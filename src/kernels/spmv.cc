#include "kernels/spmv.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rfl::kernels
{

SpmvCsr::SpmvCsr(size_t rows, size_t nnz_per_row)
    : rows_(rows), nnzPerRow_(nnz_per_row), vals_(rows * nnz_per_row),
      cols_(rows * nnz_per_row), rowptr_(rows + 1), x_(rows), y_(rows)
{
    RFL_ASSERT(rows > 0 && nnz_per_row > 0 && nnz_per_row <= rows);
}

std::string
SpmvCsr::sizeLabel() const
{
    return "rows=" + std::to_string(rows_) +
           ",nnz/row=" + std::to_string(nnzPerRow_);
}

size_t
SpmvCsr::workingSetBytes() const
{
    return 8 * nnz() + 4 * nnz() + 4 * (rows_ + 1) + 16 * rows_;
}

double
SpmvCsr::expectedColdTrafficBytes() const
{
    const double nr = static_cast<double>(rows_);
    const double nz = static_cast<double>(nnz());
    return 8.0 * nz + 4.0 * nz + 4.0 * nr + 8.0 * nr + 16.0 * nr;
}

void
SpmvCsr::init(uint64_t seed)
{
    Rng rng(seed);
    rowptr_[0] = 0;
    for (size_t r = 0; r < rows_; ++r)
        rowptr_[r + 1] =
            static_cast<int32_t>((r + 1) * nnzPerRow_);
    std::vector<int32_t> row_cols(nnzPerRow_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t k = 0; k < nnzPerRow_; ++k)
            row_cols[k] = static_cast<int32_t>(rng.nextBounded(rows_));
        std::sort(row_cols.begin(), row_cols.end());
        for (size_t k = 0; k < nnzPerRow_; ++k) {
            const size_t idx = r * nnzPerRow_ + k;
            cols_[idx] = row_cols[k];
            vals_[idx] = rng.nextDouble(-1.0, 1.0);
        }
    }
    for (size_t i = 0; i < rows_; ++i) {
        x_[i] = rng.nextDouble(-1.0, 1.0);
        y_[i] = 0.0;
    }
}

void
SpmvCsr::run(NativeEngine &e, int part, int nparts)
{
    runT(e, part, nparts);
}

void
SpmvCsr::run(SimEngine &e, int part, int nparts)
{
    runT(e, part, nparts);
}

double
SpmvCsr::checksum() const
{
    double s = 0.0;
    for (size_t i = 0; i < rows_; ++i)
        s += y_[i];
    return s;
}

} // namespace rfl::kernels
