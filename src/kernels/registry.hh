/**
 * @file
 * Kernel factory: build kernels from textual specs.
 *
 * A spec is "<name>" or "<name>:key=value,key=value", e.g.
 *   "daxpy:n=65536"
 *   "dgemm-blocked:n=256,block=32"
 *   "spmv-csr:rows=8192,nnz=16"
 * Unknown names or malformed specs call fatal() (user error).
 */

#ifndef RFL_KERNELS_REGISTRY_HH
#define RFL_KERNELS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.hh"

namespace rfl::kernels
{

/** @return a new kernel built from @p spec (see file comment). */
std::unique_ptr<Kernel> createKernel(const std::string &spec);

/** @return the list of recognized kernel names. */
std::vector<std::string> kernelNames();

/** @return usage line for each kernel (name, parameters, defaults). */
std::vector<std::string> kernelHelp();

} // namespace rfl::kernels

#endif // RFL_KERNELS_REGISTRY_HH
