#include "kernels/triad.hh"

#include "support/logging.hh"

namespace rfl::kernels
{

Triad::Triad(size_t n, bool nt) : n_(n), nt_(nt), a_(n), b_(n), c_(n)
{
    RFL_ASSERT(n > 0);
}

std::string
Triad::sizeLabel() const
{
    return "n=" + std::to_string(n_);
}

void
Triad::init(uint64_t seed)
{
    Rng rng(seed);
    s_ = rng.nextDouble(0.5, 2.0);
    for (size_t i = 0; i < n_; ++i) {
        a_[i] = 0.0;
        b_[i] = rng.nextDouble(-1.0, 1.0);
        c_[i] = rng.nextDouble(-1.0, 1.0);
    }
}

void
Triad::run(NativeEngine &e, int part, int nparts)
{
    runT(e, part, nparts);
}

void
Triad::run(SimEngine &e, int part, int nparts)
{
    runT(e, part, nparts);
}

double
Triad::checksum() const
{
    double s = 0.0;
    for (size_t i = 0; i < n_; ++i)
        s += a_[i];
    return s;
}

} // namespace rfl::kernels
