/**
 * @file
 * daxpy: y = a*x + y — the canonical memory-bound validation kernel.
 *
 * Analytic models (the numbers the paper's validation tables check):
 *   W = 2n flops (n fused multiply-adds)
 *   Q_cold = 24n bytes: read x (8n), write-allocate read y (8n),
 *            write back y (8n)
 *   I_cold = 1/12 flops/byte
 */

#ifndef RFL_KERNELS_DAXPY_HH
#define RFL_KERNELS_DAXPY_HH

#include "kernels/kernel.hh"
#include "support/aligned_buffer.hh"

namespace rfl::kernels
{

/** See file comment. */
class Daxpy : public Kernel
{
  public:
    /** @param n vector length in doubles. */
    explicit Daxpy(size_t n);

    std::string name() const override { return "daxpy"; }
    std::string sizeLabel() const override;
    size_t workingSetBytes() const override { return 16 * n_; }
    double expectedFlops() const override
    {
        return 2.0 * static_cast<double>(n_);
    }
    double expectedColdTrafficBytes() const override
    {
        return 24.0 * static_cast<double>(n_);
    }
    void init(uint64_t seed) override;
    void run(NativeEngine &e, int part, int nparts) override;
    void run(SimEngine &e, int part, int nparts) override;
    double checksum() const override;

    size_t n() const { return n_; }

  private:
    template <typename E>
    void
    runT(E &e, int part, int nparts)
    {
        const auto [lo, hi] = partitionRange(n_, part, nparts);
        const double *x = x_.data();
        double *y = y_.data();
        const int w = e.lanes();
        size_t i = lo;
        if (w > 1) {
            const Vec va = e.vbroadcast(a_);
            for (; i + static_cast<size_t>(w) <= hi;
                 i += static_cast<size_t>(w)) {
                const Vec vx = e.vload(x + i);
                const Vec vy = e.vload(y + i);
                e.vstore(y + i, e.vfmadd(va, vx, vy));
            }
        }
        for (; i < hi; ++i) {
            const double xi = e.load(x + i);
            const double yi = e.load(y + i);
            e.store(y + i, e.fmadd(a_, xi, yi));
        }
        e.loop((hi - lo + static_cast<size_t>(w) - 1) /
               static_cast<size_t>(w));
    }

    size_t n_;
    double a_ = 0.0;
    AlignedBuffer<double> x_;
    AlignedBuffer<double> y_;
};

} // namespace rfl::kernels

#endif // RFL_KERNELS_DAXPY_HH
