/**
 * @file
 * 3-point stencil: b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1].
 *
 * Analytic models:
 *   W = 5(n-2) flops (2 fmadds + 1 mul per interior point)
 *   Q_cold = 24n bytes: read a (8n), write-allocate b (8n), write back
 *            b (8n) — neighbouring loads hit in L1
 *   I_cold ~ 5/24 flops/byte
 *
 * Used by the prefetcher experiment (F7): a pure unit-stride read stream
 * with moderate intensity, where the streamer's speculative lines show up
 * clearly at the IMC.
 */

#ifndef RFL_KERNELS_STENCIL_HH
#define RFL_KERNELS_STENCIL_HH

#include "kernels/kernel.hh"
#include "support/aligned_buffer.hh"

namespace rfl::kernels
{

/** See file comment. */
class Stencil3 : public Kernel
{
  public:
    explicit Stencil3(size_t n);

    std::string name() const override { return "stencil3"; }
    std::string sizeLabel() const override;
    size_t workingSetBytes() const override { return 16 * n_; }
    double expectedFlops() const override
    {
        return 5.0 * static_cast<double>(n_ - 2);
    }
    double expectedColdTrafficBytes() const override
    {
        return 24.0 * static_cast<double>(n_);
    }
    void init(uint64_t seed) override;
    void run(NativeEngine &e, int part, int nparts) override;
    void run(SimEngine &e, int part, int nparts) override;
    double checksum() const override;

  private:
    template <typename E>
    void
    runT(E &e, int part, int nparts)
    {
        // Interior points only: [1, n-1).
        auto [lo, hi] = partitionRange(n_ - 2, part, nparts);
        lo += 1;
        hi += 1;
        const double *a = a_.data();
        double *b = b_.data();
        const int w = e.lanes();
        size_t i = lo;
        if (w > 1) {
            const Vec vw0 = e.vbroadcast(w0_);
            const Vec vw1 = e.vbroadcast(w1_);
            const Vec vw2 = e.vbroadcast(w2_);
            for (; i + static_cast<size_t>(w) <= hi;
                 i += static_cast<size_t>(w)) {
                const Vec left = e.vload(a + i - 1);
                const Vec mid = e.vload(a + i);
                const Vec right = e.vload(a + i + 1);
                Vec acc = e.vmul(vw1, mid);
                acc = e.vfmadd(vw0, left, acc);
                acc = e.vfmadd(vw2, right, acc);
                e.vstore(b + i, acc);
            }
        }
        for (; i < hi; ++i) {
            const double left = e.load(a + i - 1);
            const double mid = e.load(a + i);
            const double right = e.load(a + i + 1);
            double acc = e.mul(w1_, mid);
            acc = e.fmadd(w0_, left, acc);
            acc = e.fmadd(w2_, right, acc);
            e.store(b + i, acc);
        }
        e.loop((hi - lo + static_cast<size_t>(w) - 1) /
               static_cast<size_t>(w));
    }

    size_t n_;
    double w0_ = 0.25, w1_ = 0.5, w2_ = 0.25;
    AlignedBuffer<double> a_;
    AlignedBuffer<double> b_;
};

} // namespace rfl::kernels

#endif // RFL_KERNELS_STENCIL_HH
