#include "support/failpoint.hh"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "support/cancel.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"

namespace rfl::failpoint
{

namespace detail
{
std::atomic<uint32_t> armedCount{0};
} // namespace detail

namespace
{

enum class Action
{
    Off,
    Error,
    Throw,
    Sleep,
};

/** One armed failpoint's configuration and trigger state. */
struct Armed
{
    Action action = Action::Off;
    uint64_t sleepMs = 0;
    double probability = 1.0; ///< trigger chance per evaluation
    uint64_t maxCount = 0;    ///< 0 = unlimited
    uint64_t hits = 0;        ///< evaluations that triggered
    uint64_t rngState = 0;    ///< per-failpoint xorshift stream
    telemetry::Counter *triggers = nullptr;
};

struct RegistryState
{
    std::mutex mutex;
    std::map<std::string, Armed> armed;
    /** Trigger totals survive disarm so tests can assert post-hoc. */
    std::map<std::string, uint64_t> history;
};

RegistryState &
state()
{
    static RegistryState s;
    return s;
}

/** xorshift64*: deterministic, cheap, good enough for trigger dice. */
double
nextUniform(uint64_t &s)
{
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return static_cast<double>((s * 0x2545f4914f6cdd1dull) >> 11) /
           static_cast<double>(1ull << 53);
}

bool
parseSpec(const std::string &name, const std::string &spec, Armed &out,
          std::string *err)
{
    const auto bad = [&](const std::string &what) {
        if (err)
            *err = "failpoint '" + name + "': " + what + " in '" +
                   spec + "'";
        return false;
    };

    // "<action>[:mod[:mod...]]"
    size_t colon = spec.find(':');
    const std::string action = spec.substr(0, colon);
    if (action == "off") {
        out.action = Action::Off;
    } else if (action == "error") {
        out.action = Action::Error;
    } else if (action == "throw") {
        out.action = Action::Throw;
    } else if (action.rfind("sleep(", 0) == 0 && action.back() == ')') {
        const std::string arg =
            action.substr(6, action.size() - 7);
        char *end = nullptr;
        const long ms = std::strtol(arg.c_str(), &end, 10);
        if (end == arg.c_str() || *end != '\0' || ms < 0)
            return bad("sleep wants a millisecond count");
        out.action = Action::Sleep;
        out.sleepMs = static_cast<uint64_t>(ms);
    } else {
        return bad("unknown action '" + action + "'");
    }

    while (colon != std::string::npos) {
        const size_t begin = colon + 1;
        colon = spec.find(':', begin);
        const std::string mod = spec.substr(
            begin, colon == std::string::npos ? std::string::npos
                                              : colon - begin);
        const size_t eq = mod.find('=');
        const std::string key = mod.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : mod.substr(eq + 1);
        char *end = nullptr;
        if (key == "p") {
            const double p = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || p < 0.0 ||
                p > 1.0)
                return bad("p wants a probability in [0,1]");
            out.probability = p;
        } else if (key == "count") {
            const long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 1)
                return bad("count wants a positive integer");
            out.maxCount = static_cast<uint64_t>(n);
        } else {
            return bad("unknown modifier '" + key + "'");
        }
    }

    // Seeded by name only: the trigger pattern of a probabilistic
    // failpoint is a fixed function of its evaluation sequence, so a
    // chaos failure reproduces under the same request order.
    out.rngState = Fnv1a().mix(name).value() | 1;
    return true;
}

} // namespace

namespace detail
{

bool
evaluateSlow(const char *name)
{
    Action action = Action::Off;
    uint64_t sleepMs = 0;
    {
        RegistryState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        const auto it = s.armed.find(name);
        if (it == s.armed.end())
            return false;
        Armed &fp = it->second;
        if (fp.action == Action::Off)
            return false;
        if (fp.maxCount && fp.hits >= fp.maxCount)
            return false;
        if (fp.probability < 1.0 &&
            nextUniform(fp.rngState) >= fp.probability)
            return false;
        ++fp.hits;
        ++s.history[name];
        fp.triggers->inc();
        action = fp.action;
        sleepMs = fp.sleepMs;
    }

    // Act outside the registry lock: a sleeping failpoint must not
    // serialize every other armed seam in the process.
    switch (action) {
      case Action::Off:
        return false;
      case Action::Error:
        return true;
      case Action::Throw:
        throw FailpointError(std::string("failpoint '") + name +
                             "' triggered");
      case Action::Sleep: {
        // Sliced sleep: a job deadline (support/cancel.hh) bound to
        // this thread still fires mid-delay instead of waiting out an
        // arbitrarily long injected stall.
        using Clock = std::chrono::steady_clock;
        const auto until = Clock::now() +
                           std::chrono::milliseconds(sleepMs);
        while (Clock::now() < until) {
            checkCancelled();
            const auto left = until - Clock::now();
            std::this_thread::sleep_for(std::min<Clock::duration>(
                left, std::chrono::milliseconds(20)));
        }
        return false;
      }
    }
    return false;
}

} // namespace detail

bool
arm(const std::string &name, const std::string &actionSpec,
    std::string *err)
{
    Armed fp;
    if (!parseSpec(name, actionSpec, fp, err))
        return false;
    fp.triggers = &telemetry::Registry::global().counter(
        "rfl_failpoint_triggers_total",
        "fault injections performed, by failpoint name",
        {{"name", name}});

    RegistryState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto [it, inserted] = s.armed.insert_or_assign(name, fp);
    (void)it;
    if (inserted)
        detail::armedCount.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
disarm(const std::string &name)
{
    RegistryState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.armed.erase(name))
        detail::armedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
disarmAll()
{
    RegistryState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    detail::armedCount.fetch_sub(
        static_cast<uint32_t>(s.armed.size()),
        std::memory_order_relaxed);
    s.armed.clear();
}

uint64_t
triggerCount(const std::string &name)
{
    RegistryState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.history.find(name);
    return it == s.history.end() ? 0 : it->second;
}

std::vector<std::string>
armedNames()
{
    RegistryState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<std::string> names;
    names.reserve(s.armed.size());
    for (const auto &[name, fp] : s.armed)
        names.push_back(name);
    return names;
}

int
armFromEnv(const char *env)
{
    const char *value = std::getenv(env);
    if (!value || !*value)
        return 0;
    int count = 0;
    std::string text(value);
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string entry = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        const size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            warn("%s: skipping malformed entry '%s' (want "
                 "name=action)",
                 env, entry.c_str());
            continue;
        }
        std::string err;
        if (!arm(entry.substr(0, eq), entry.substr(eq + 1), &err)) {
            warn("%s: %s", env, err.c_str());
            continue;
        }
        ++count;
    }
    if (count)
        warn("%s: %d failpoint(s) armed — this process is running "
             "under fault injection",
             env, count);
    return count;
}

namespace
{
/** Every rfl binary honors RFL_FAILPOINTS without per-main plumbing. */
struct EnvArmAtStartup
{
    EnvArmAtStartup() { armFromEnv(); }
} envArmAtStartup;
} // namespace

} // namespace rfl::failpoint
