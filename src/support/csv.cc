#include "support/csv.hh"

#include <filesystem>
#include <sstream>

#include "support/logging.hh"
#include "support/units.hh"

namespace rfl
{

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : path_(path), arity_(header.size())
{
    RFL_ASSERT(arity_ > 0);
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        ensureDirectory(p.parent_path().string());
    out_.open(path);
    if (!out_)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
    writeRow(header);
}

CsvWriter::~CsvWriter() = default;

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != arity_) {
        panic("CsvWriter: %zu cells for %zu columns in '%s'", cells.size(),
              arity_, path_.c_str());
    }
    writeRow(cells);
    ++rows_;
}

void
CsvWriter::addRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells)
        text.push_back(formatSig(v, 12));
    addRow(text);
}

std::string
CsvWriter::quote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << quote(cells[i]);
    }
    out_ << '\n';
}

void
ensureDirectory(const std::string &path)
{
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec)
        fatal("cannot create directory '%s': %s", path.c_str(),
              ec.message().c_str());
}

} // namespace rfl
