#include "support/statistics.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace rfl
{

void
Sample::add(double v)
{
    values_.push_back(v);
}

void
Sample::addAll(const std::vector<double> &vs)
{
    values_.insert(values_.end(), vs.begin(), vs.end());
}

void
Sample::clear()
{
    values_.clear();
}

double
Sample::mean() const
{
    if (values_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values_)
        s += v;
    return s / static_cast<double>(values_.size());
}

double
Sample::stdev() const
{
    if (values_.size() < 2)
        return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : values_)
        s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double
Sample::ci95() const
{
    if (values_.size() < 2)
        return 0.0;
    return 1.96 * stdev() / std::sqrt(static_cast<double>(values_.size()));
}

double
Sample::min() const
{
    if (values_.empty())
        return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double
Sample::max() const
{
    if (values_.empty())
        return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

std::vector<double>
Sample::sorted() const
{
    std::vector<double> s = values_;
    std::sort(s.begin(), s.end());
    return s;
}

double
Sample::median() const
{
    return quantile(0.5);
}

double
Sample::quantile(double q) const
{
    if (values_.empty())
        return 0.0;
    RFL_ASSERT(q >= 0.0 && q <= 1.0);
    const std::vector<double> s = sorted();
    if (s.size() == 1)
        return s.front();
    const double pos = q * static_cast<double>(s.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double
Sample::cv() const
{
    const double m = mean();
    if (m == 0.0)
        return 0.0;
    return stdev() / m;
}

double
relativeError(double measured, double expected)
{
    if (expected == 0.0)
        return measured == 0.0 ? 0.0 : 1.0;
    return std::fabs(measured - expected) / std::fabs(expected);
}

double
geomean(const std::vector<double> &vs)
{
    if (vs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double v : vs) {
        RFL_ASSERT(v > 0.0);
        logsum += std::log(v);
    }
    return std::exp(logsum / static_cast<double>(vs.size()));
}

} // namespace rfl
