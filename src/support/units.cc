#include "support/units.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace rfl
{

namespace
{

std::string
formatScaled(double v, double base, const char *const *suffixes,
             int n_suffixes, const char *unit)
{
    int idx = 0;
    double scaled = v;
    while (std::fabs(scaled) >= base && idx < n_suffixes - 1) {
        scaled /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", scaled, suffixes[idx], unit);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"", "Ki", "Mi", "Gi", "Ti"};
    return formatScaled(bytes, 1024.0, suffixes, 5, "B");
}

std::string
formatFlops(double flops)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T"};
    return formatScaled(flops, 1000.0, suffixes, 5, "flops");
}

std::string
formatFlopRate(double flops_per_sec)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T"};
    return formatScaled(flops_per_sec, 1000.0, suffixes, 5, "flop/s");
}

std::string
formatByteRate(double bytes_per_sec)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T"};
    return formatScaled(bytes_per_sec, 1000.0, suffixes, 5, "B/s");
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

std::string
formatSig(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    return buf;
}

uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        fatal("parseSize: empty size expression");
    char *end = nullptr;
    const double base = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        fatal("parseSize: cannot parse '%s'", text.c_str());
    uint64_t mult = 1;
    if (*end != '\0') {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
          case 'k': mult = KiB; break;
          case 'm': mult = MiB; break;
          case 'g': mult = GiB; break;
          default:
            fatal("parseSize: unknown suffix in '%s'", text.c_str());
        }
    }
    if (base < 0)
        fatal("parseSize: negative size '%s'", text.c_str());
    return static_cast<uint64_t>(base * static_cast<double>(mult));
}

} // namespace rfl
