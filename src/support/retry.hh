/**
 * @file
 * Bounded retry with exponential backoff + jitter for transient I/O.
 *
 * The campaign pipeline touches disk at a handful of seams (result
 * cache spill, trace files); a transient failure there — full page
 * cache, NFS hiccup, an injected failpoint — should cost a few
 * milliseconds of backoff, not a failed campaign. retryWithBackoff
 * runs an attempt closure until it reports success or the attempt
 * budget is exhausted; between attempts it sleeps
 * baseDelay * 2^attempt, jittered uniformly over [0.5x, 1.5x) so
 * colliding retriers (several executor workers hitting the same sick
 * disk) spread out instead of thundering in lockstep.
 *
 * Every retry is visible in the telemetry registry:
 *   rfl_retry_attempts_total{op=...}   re-attempts after a failure
 *   rfl_retry_success_total{op=...}    operations that recovered
 *   rfl_retry_exhausted_total{op=...}  operations that never did
 *
 * The attempt closure returns true on success. Exceptions are NOT
 * retried — they indicate non-transient trouble (bad spec, corrupt
 * file) and propagate immediately. Backoff sleeps poll the thread's
 * cancellation token (support/cancel.hh), so a retry loop inside a
 * deadlined job cannot outlive its deadline.
 */

#ifndef RFL_SUPPORT_RETRY_HH
#define RFL_SUPPORT_RETRY_HH

#include <functional>

namespace rfl
{

/** Retry knobs; defaults suit local-disk metadata operations. */
struct RetryPolicy
{
    /** Total tries, first included (3 = one try + two retries). */
    int attempts = 3;
    /** Backoff before the first retry; doubles per retry. */
    double baseDelayMs = 5.0;
    /** Cap on a single backoff sleep (post-jitter). */
    double maxDelayMs = 200.0;
};

/**
 * Run @p attempt (returns true on success) up to @p policy.attempts
 * times, backing off between tries. @p op labels the telemetry
 * counters. @return whether any attempt succeeded.
 */
bool retryWithBackoff(const char *op, const RetryPolicy &policy,
                      const std::function<bool()> &attempt);

/** retryWithBackoff with default policy. */
inline bool
retryWithBackoff(const char *op, const std::function<bool()> &attempt)
{
    return retryWithBackoff(op, RetryPolicy{}, attempt);
}

} // namespace rfl

#endif // RFL_SUPPORT_RETRY_HH
