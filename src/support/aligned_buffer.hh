/**
 * @file
 * Cache-line-aligned owning buffer for kernel operands.
 *
 * The measurement methodology depends on operands starting at a cache-line
 * boundary: expected-traffic formulas assume an array of n doubles touches
 * exactly ceil(8n / 64) lines. A misaligned operand would touch one extra
 * line and bias the traffic-validation experiments.
 */

#ifndef RFL_SUPPORT_ALIGNED_BUFFER_HH
#define RFL_SUPPORT_ALIGNED_BUFFER_HH

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/address_arena.hh"

namespace rfl
{

/**
 * Owning, cache-line (64 B) aligned array of T.
 *
 * Move-only; the allocation is zero-initialized so cold-cache protocols
 * start from a deterministic memory image.
 */
template <typename T>
class AlignedBuffer
{
  public:
    static constexpr size_t alignment = 64;

    AlignedBuffer() = default;

    /** Allocate @p n zero-initialized elements. */
    explicit AlignedBuffer(size_t n) { reset(n); }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {}

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** Re-allocate to @p n zero-initialized elements. */
    void
    reset(size_t n)
    {
        release();
        if (n == 0)
            return;
        size_t bytes = n * sizeof(T);
        // aligned_alloc requires the size to be a multiple of the alignment.
        bytes = (bytes + alignment - 1) / alignment * alignment;
        void *p = std::aligned_alloc(alignment, bytes);
        if (!p)
            throw std::bad_alloc();
        data_ = static_cast<T *>(p);
        size_ = n;
        for (size_t i = 0; i < n; ++i)
            data_[i] = T{};
        // Give the buffer a canonical simulated address when a
        // measurement scope is active (see support/address_arena.hh).
        if (AddressArena *arena = AddressArena::current())
            arena->registerRegion(p, bytes);
    }

    T *data() { return data_; }
    const T *data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t sizeBytes() const { return size_ * sizeof(T); }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
    }

    T *data_ = nullptr;
    size_t size_ = 0;
};

} // namespace rfl

#endif // RFL_SUPPORT_ALIGNED_BUFFER_HH
