#include "support/cancel.hh"

namespace rfl
{

namespace detail
{
thread_local const CancelToken *tlCancelToken = nullptr;
} // namespace detail

void
checkCancelled(const char *what)
{
    if (!cancelPending())
        return;
    std::string msg = "deadline exceeded";
    if (what && *what) {
        msg += " during ";
        msg += what;
    }
    throw TimedOutError(msg);
}

} // namespace rfl
