#include "support/gnuplot.hh"

#include <fstream>

#include "support/csv.hh"
#include "support/logging.hh"
#include "support/units.hh"

namespace rfl
{

GnuplotWriter::GnuplotWriter(std::string directory, std::string name,
                             std::string plot_title)
    : directory_(std::move(directory)), name_(std::move(name)),
      title_(std::move(plot_title))
{}

void
GnuplotWriter::setAxes(std::string xlabel, std::string ylabel, bool loglog)
{
    xlabel_ = std::move(xlabel);
    ylabel_ = std::move(ylabel);
    loglog_ = loglog;
}

void
GnuplotWriter::addSeries(GnuplotSeries series)
{
    RFL_ASSERT(series.xs.size() == series.ys.size());
    RFL_ASSERT(series.labels.empty() ||
               series.labels.size() == series.xs.size());
    series_.push_back({std::move(series), false});
}

void
GnuplotWriter::addLineSeries(const std::string &title,
                             const std::vector<double> &xs,
                             const std::vector<double> &ys)
{
    GnuplotSeries s;
    s.title = title;
    s.xs = xs;
    s.ys = ys;
    RFL_ASSERT(s.xs.size() == s.ys.size());
    series_.push_back({std::move(s), true});
}

void
GnuplotWriter::addPointSeries(const std::string &title,
                              const std::vector<double> &xs,
                              const std::vector<double> &ys,
                              const std::vector<std::string> &labels)
{
    GnuplotSeries s;
    s.title = title;
    s.xs = xs;
    s.ys = ys;
    s.labels = labels;
    RFL_ASSERT(s.xs.size() == s.ys.size());
    RFL_ASSERT(s.labels.empty() || s.labels.size() == s.xs.size());
    series_.push_back({std::move(s), false});
}

std::string
GnuplotWriter::write() const
{
    ensureDirectory(directory_);
    const std::string dat_path = directory_ + "/" + name_ + ".dat";
    const std::string gp_path = directory_ + "/" + name_ + ".gp";

    std::ofstream dat(dat_path);
    if (!dat)
        fatal("GnuplotWriter: cannot open '%s'", dat_path.c_str());
    for (size_t i = 0; i < series_.size(); ++i) {
        const GnuplotSeries &s = series_[i].series;
        dat << "# series " << i << ": " << s.title << "\n";
        for (size_t j = 0; j < s.xs.size(); ++j) {
            dat << formatSig(s.xs[j], 12) << " " << formatSig(s.ys[j], 12);
            if (!s.labels.empty())
                dat << " \"" << s.labels[j] << "\"";
            dat << "\n";
        }
        dat << "\n\n"; // gnuplot index separator
    }

    std::ofstream gp(gp_path);
    if (!gp)
        fatal("GnuplotWriter: cannot open '%s'", gp_path.c_str());
    gp << "# Auto-generated roofline figure script\n";
    gp << "set terminal pngcairo size 900,650\n";
    gp << "set output '" << name_ << ".png'\n";
    gp << "set title \"" << title_ << "\"\n";
    gp << "set xlabel \"" << xlabel_ << "\"\n";
    gp << "set ylabel \"" << ylabel_ << "\"\n";
    if (loglog_)
        gp << "set logscale xy\n";
    gp << "set key left top\n";
    gp << "set grid\n";
    gp << "plot \\\n";
    for (size_t i = 0; i < series_.size(); ++i) {
        const Entry &e = series_[i];
        gp << "  '" << name_ << ".dat' index " << i << " using 1:2 with "
           << (e.lines ? "lines lw 2" : "points pt 7 ps 1.2") << " title \""
           << e.series.title << "\"";
        gp << (i + 1 < series_.size() ? ", \\\n" : "\n");
    }
    return gp_path;
}

} // namespace rfl
