/**
 * @file
 * Named failpoints: compiled-in fault-injection sites for chaos tests.
 *
 * A failpoint is a named hook at an I/O or execution seam — cache spill
 * append, trace read, job simulate, socket send — that normally does
 * nothing. Arming it attaches an *action* the seam performs when
 * control passes through:
 *
 *   error        the seam behaves as if the operation failed (the call
 *                site's own error path runs: a retry, a 500, a Failed
 *                job);
 *   throw        throw FailpointError from the seam (exercises unwind
 *                paths that no organic failure reaches determinately);
 *   sleep(<ms>)  delay before continuing (stalled worker, slow disk;
 *                sliced so a bound cancellation deadline still fires —
 *                see support/cancel.hh);
 *   off          parse-and-ignore placeholder (arm without effect).
 *
 * Modifiers, appended with ':' after the action:
 *   p=<0..1>     probabilistic trigger (deterministic per-failpoint
 *                xorshift stream seeded by the failpoint name, so a
 *                chaos run is reproducible for a fixed request order);
 *   count=<n>    trigger at most n times, then stay silent.
 *
 * Configuration comes from the RFL_FAILPOINTS environment variable,
 * parsed once at process start ("name=action,name=action,..." — e.g.
 * RFL_FAILPOINTS='cache.spill.append=error:count=2,job.simulate=
 * sleep(500):p=0.5'), or from the test-only runtime API (arm/disarm).
 *
 * Cost when unarmed is one relaxed atomic load and a predictable
 * branch per seam (RFL_FAILPOINT compiles to a test-and-skip); the
 * registry mutex is only ever touched while at least one failpoint is
 * armed. Every trigger increments
 * rfl_failpoint_triggers_total{name="<failpoint>"} in the global
 * telemetry registry, so a chaos run's injected faults are visible on
 * /metricsz next to the retries and failures they caused.
 */

#ifndef RFL_SUPPORT_FAILPOINT_HH
#define RFL_SUPPORT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rfl::failpoint
{

/** What an armed 'throw' action throws (and what seams that want a
 *  distinct injected-fault type should catch). */
class FailpointError : public std::runtime_error
{
  public:
    explicit FailpointError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

namespace detail
{
/** Number of currently armed failpoints; the seam fast path. */
extern std::atomic<uint32_t> armedCount;
/** Slow path: look up @p name, run its action. @return true when the
 *  'error' action fired (the caller simulates an operation failure). */
bool evaluateSlow(const char *name);
} // namespace detail

/** @return whether any failpoint is armed (one relaxed load). */
inline bool
active()
{
    return detail::armedCount.load(std::memory_order_relaxed) != 0;
}

/**
 * Evaluate the failpoint @p name: sleeps/throws per the armed action;
 * @return true when the call site should simulate a failure ('error'
 * action). False (with no side effect) when unarmed.
 */
inline bool
fire(const char *name)
{
    return active() && detail::evaluateSlow(name);
}

/**
 * Arm @p name with @p actionSpec ("error", "throw", "sleep(250)",
 * "error:p=0.5:count=3", ...). Re-arming replaces the previous action
 * and resets its trigger/count state. @return false (with the parse
 * problem in @p err when non-null) on a malformed spec.
 */
bool arm(const std::string &name, const std::string &actionSpec,
         std::string *err = nullptr);

/** Disarm @p name; silently ignores unknown names. */
void disarm(const std::string &name);

/** Disarm everything (test teardown). */
void disarmAll();

/** Times @p name actually triggered (0 when never armed). */
uint64_t triggerCount(const std::string &name);

/** Names currently armed, sorted (diagnostics, /statsz). */
std::vector<std::string> armedNames();

/**
 * Parse @p env (default RFL_FAILPOINTS) and arm every entry; malformed
 * entries warn and are skipped, never fatal — a chaos harness must not
 * be able to kill the process it is probing before it starts. Runs
 * automatically before main() via a static initializer in
 * failpoint.cc; call explicitly only in tests. @return entries armed.
 */
int armFromEnv(const char *env = "RFL_FAILPOINTS");

} // namespace rfl::failpoint

/**
 * The seam macro: evaluates to true when the call site should simulate
 * a failure. Usage:
 *
 *   if (RFL_FAILPOINT("cache.spill.append"))
 *       ok = false;             // pretend the append failed
 */
#define RFL_FAILPOINT(name) (::rfl::failpoint::fire(name))

#endif // RFL_SUPPORT_FAILPOINT_HH
