/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All workload initialization must be reproducible bit-for-bit across
 * runs, so kernels use this generator with fixed seeds instead of
 * std::random_device.
 */

#ifndef RFL_SUPPORT_RNG_HH
#define RFL_SUPPORT_RNG_HH

#include <cstdint>

namespace rfl
{

/** SplitMix64: tiny, fast, well-distributed, and fully deterministic. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** @return next 64 random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** @return uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

  private:
    uint64_t state_;
};

} // namespace rfl

#endif // RFL_SUPPORT_RNG_HH
