/**
 * @file
 * Tiny command-line option parser shared by bench/example binaries.
 *
 * Supports `--flag`, `--key=value` and `--key value` forms plus `--help`.
 * Every bench binary must run with no arguments (the reproduction driver
 * invokes them bare), so all options have defaults.
 */

#ifndef RFL_SUPPORT_CLI_HH
#define RFL_SUPPORT_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace rfl
{

/** Parsed command line: options plus positional arguments. */
class Cli
{
  public:
    /** Describe one accepted option for --help output. */
    struct OptionSpec
    {
        std::string name;        // without leading dashes
        std::string help;
        std::string default_val; // shown in help; "" for flags
    };

    Cli() = default;

    /** Register an option (for help text and typo detection). */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &default_val = "");

    /**
     * Parse argv. Unknown --options are fatal(); `--help` prints usage
     * and exits 0.
     */
    void parse(int argc, const char *const *argv);

    /** @return true when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** @return value of --name, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** @return integer value of --name, or @p fallback when absent. */
    long getInt(const std::string &name, long fallback) const;

    /** @return double value of --name, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** @return positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Render usage text. */
    std::string usage(const std::string &program) const;

  private:
    std::vector<OptionSpec> specs_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/**
 * @return the output directory for experiment artifacts: $RFL_OUT_DIR if
 * set, otherwise "out".
 */
std::string outputDirectory();

/**
 * @return true when the reproduction should run in reduced-size mode
 * ($RFL_FAST set to anything but "0"). Bench binaries shrink sweeps so the
 * full suite completes quickly.
 */
bool fastMode();

} // namespace rfl

#endif // RFL_SUPPORT_CLI_HH
