#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rfl
{

namespace
{

bool g_verbose = true;
std::atomic<bool> g_fatal_throws{false};

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, ap);
    std::fprintf(stream, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (g_fatal_throws.load(std::memory_order_relaxed)) {
        char buf[1024];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        throw FatalError(buf);
    }
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

bool
setFatalThrows(bool enable)
{
    return g_fatal_throws.exchange(enable, std::memory_order_relaxed);
}

bool
fatalThrows()
{
    return g_fatal_throws.load(std::memory_order_relaxed);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

} // namespace rfl
