#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace rfl
{

namespace
{

bool g_verbose = true;

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, ap);
    std::fprintf(stream, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

} // namespace rfl
