#include "support/logging.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <utility>

namespace rfl
{

namespace
{

bool g_verbose = true;
std::atomic<bool> g_fatal_throws{false};
thread_local std::string tl_request_id;

/**
 * The one sink: "<RFC3339-UTC ms timestamp> <level>[ rid=<id>]:
 * <message>\n", composed into a single buffer and written with one
 * fputs so concurrent threads' lines never interleave mid-line.
 */
void
vreport(FILE *stream, const char *level, const char *fmt, va_list ap)
{
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);

    char line[2048];
    size_t off = std::strftime(line, sizeof(line), "%Y-%m-%dT%H:%M:%S",
                               &tm);
    off += static_cast<size_t>(std::snprintf(
        line + off, sizeof(line) - off, ".%03ldZ %s",
        ts.tv_nsec / 1000000, level));
    if (!tl_request_id.empty() && off < sizeof(line)) {
        off += static_cast<size_t>(
            std::snprintf(line + off, sizeof(line) - off, " rid=%s",
                          tl_request_id.c_str()));
    }
    if (off < sizeof(line)) {
        off += static_cast<size_t>(
            std::snprintf(line + off, sizeof(line) - off, ": "));
    }
    if (off < sizeof(line)) {
        const int n =
            std::vsnprintf(line + off, sizeof(line) - off, fmt, ap);
        if (n > 0)
            off = std::min(off + static_cast<size_t>(n),
                           sizeof(line) - 1);
    }
    // Truncation above is deliberate: one bounded line per message.
    if (off > sizeof(line) - 2)
        off = sizeof(line) - 2;
    line[off] = '\n';
    line[off + 1] = '\0';
    std::fputs(line, stream);
}

} // namespace

LogContext::LogContext(std::string requestId)
    : prev_(std::exchange(
          tl_request_id,
          requestId.empty() ? tl_request_id : std::move(requestId)))
{
}

LogContext::~LogContext()
{
    tl_request_id = std::move(prev_);
}

const std::string &
LogContext::currentRequestId()
{
    return tl_request_id;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (g_fatal_throws.load(std::memory_order_relaxed)) {
        char buf[1024];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        throw FatalError(buf);
    }
    vreport(stderr, "fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

bool
setFatalThrows(bool enable)
{
    return g_fatal_throws.exchange(enable, std::memory_order_relaxed);
}

bool
fatalThrows()
{
    return g_fatal_throws.load(std::memory_order_relaxed);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "info", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

} // namespace rfl
