#include "support/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace rfl
{

void
Cli::addOption(const std::string &name, const std::string &help,
               const std::string &default_val)
{
    specs_.push_back({name, help, default_val});
}

void
Cli::parse(int argc, const char *const *argv)
{
    auto known = [&](const std::string &name) {
        for (const auto &s : specs_)
            if (s.name == name)
                return true;
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(argv[0]).c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
            // Next token is not an option: treat it as this option's value.
            value = argv[++i];
        }
        if (!known(arg))
            fatal("unknown option '--%s' (try --help)", arg.c_str());
        values_[arg] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

long
Cli::getInt(const std::string &name, long fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 0);
    if (*end != '\0')
        fatal("option --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (*end != '\0')
        fatal("option --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

std::string
Cli::usage(const std::string &program) const
{
    std::ostringstream oss;
    oss << "usage: " << program << " [options]\n\noptions:\n";
    for (const auto &s : specs_) {
        oss << "  --" << s.name;
        if (!s.default_val.empty())
            oss << " <value, default " << s.default_val << ">";
        oss << "\n      " << s.help << "\n";
    }
    oss << "  --help\n      show this message\n";
    return oss.str();
}

std::string
outputDirectory()
{
    const char *env = std::getenv("RFL_OUT_DIR");
    return env && *env ? env : "out";
}

bool
fastMode()
{
    const char *env = std::getenv("RFL_FAST");
    return env && std::string(env) != "0";
}

} // namespace rfl
