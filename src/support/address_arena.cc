#include "support/address_arena.hh"

namespace rfl
{

namespace
{

thread_local AddressArena *tls_current = nullptr;

} // namespace

uint64_t
AddressArena::registerRegion(const void *host, size_t bytes)
{
    const uint64_t sim = next_;
    const uint64_t span =
        (bytes + regionAlign - 1) / regionAlign * regionAlign;
    next_ += span;
    regions_.push_back(
        {reinterpret_cast<uintptr_t>(host), bytes, sim});
    // Point the memo at the new region: it may shadow the host range of
    // a freed-and-reallocated buffer, and a stale memo into the old
    // region would otherwise win the fast path below.
    lastHit_ = regions_.size() - 1;
    return sim;
}

uint64_t
AddressArena::translatePointer(const void *p) const
{
    const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
    // Fast path: repeated accesses overwhelmingly stay in one buffer.
    // The memo can never point at a shadowed (freed-then-reused) host
    // range: registerRegion() retargets it whenever a new region
    // appears.
    if (lastHit_ < regions_.size()) {
        const Region &r = regions_[lastHit_];
        if (addr >= r.host && addr < r.host + r.bytes)
            return r.sim + (addr - r.host);
    }
    // Newest region first: a freed-and-reallocated host address must
    // resolve to its latest registration.
    for (size_t i = regions_.size(); i-- > 0;) {
        const Region &r = regions_[i];
        if (addr >= r.host && addr < r.host + r.bytes) {
            lastHit_ = i;
            return r.sim + (addr - r.host);
        }
    }
    return addr; // unregistered (stack scalar, pre-scope allocation)
}

AddressArena *
AddressArena::current()
{
    return tls_current;
}

uint64_t
AddressArena::translate(const void *p)
{
    const AddressArena *arena = tls_current;
    if (!arena)
        return reinterpret_cast<uintptr_t>(p);
    return arena->translatePointer(p);
}

AddressArena::Scope::Scope() : prev_(tls_current)
{
    tls_current = &arena_;
}

AddressArena::Scope::~Scope()
{
    tls_current = prev_;
}

} // namespace rfl
