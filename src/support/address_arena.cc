#include "support/address_arena.hh"

namespace rfl
{

thread_local AddressArena *AddressArena::tlsCurrent_ = nullptr;

uint64_t
AddressArena::registerRegion(const void *host, size_t bytes)
{
    const uint64_t sim = next_;
    const uint64_t span =
        (bytes + regionAlign - 1) / regionAlign * regionAlign;
    next_ += span;
    regions_.push_back(
        {reinterpret_cast<uintptr_t>(host), bytes, sim});
    // Reset the memo onto the new region: it may shadow the host range
    // of a freed-and-reallocated buffer, and a stale memo into the old
    // region would otherwise win the fast path.
    for (size_t &idx : recent_)
        idx = regions_.size() - 1;
    recentAt_ = 0;
    return sim;
}

uint64_t
AddressArena::translateScan(uintptr_t addr) const
{
    // Newest region first: a freed-and-reallocated host address must
    // resolve to its latest registration.
    for (size_t i = regions_.size(); i-- > 0;) {
        const Region &r = regions_[i];
        if (addr >= r.host && addr < r.host + r.bytes) {
            recent_[recentAt_] = i;
            recentAt_ = (recentAt_ + 1) & 3u;
            return r.sim + (addr - r.host);
        }
    }
    return addr; // unregistered (stack scalar, pre-scope allocation)
}

AddressArena::Scope::Scope() : prev_(tlsCurrent_)
{
    tlsCurrent_ = &arena_;
}

AddressArena::Scope::~Scope()
{
    tlsCurrent_ = prev_;
}

} // namespace rfl
