#include "support/address_arena.hh"

#include <atomic>

namespace rfl
{

namespace
{
/**
 * Process-global epoch source. Every arena construction and region
 * registration draws a fresh value, so no two (arena, epoch) memo keys
 * ever repeat — even when a new Scope's arena lands on the stack slot
 * of a destroyed one. Atomic only for the counter itself; the rule
 * that registerRegion() must not race translation on other threads is
 * unchanged.
 */
std::atomic<uint64_t> g_nextEpoch{1};

uint64_t
freshEpoch()
{
    return g_nextEpoch.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

thread_local AddressArena *AddressArena::tlsCurrent_ = nullptr;
thread_local AddressArena::Memo AddressArena::tlsMemo_;

AddressArena::AddressArena() : epoch_(freshEpoch()) {}

uint64_t
AddressArena::registerRegion(const void *host, size_t bytes)
{
    const uint64_t sim = next_;
    const uint64_t span =
        (bytes + regionAlign - 1) / regionAlign * regionAlign;
    next_ += span;
    regions_.push_back(
        {reinterpret_cast<uintptr_t>(host), bytes, sim});
    // The new region may shadow the host range of a freed-and-
    // reallocated buffer; drawing a fresh global epoch invalidates
    // every thread's memo so a stale entry into the old region can
    // never win the fast path. NOT safe concurrently with translation
    // on other threads — register everything before entering a
    // parallel section.
    epoch_ = freshEpoch();
    return sim;
}

void
AddressArena::rebindMemo(Memo &m) const
{
    m.arena = this;
    m.epoch = epoch_;
    // Seed every slot with the newest region: it is the one the next
    // translations are most likely to hit right after a registration.
    MemoEntry e;
    if (!regions_.empty()) {
        const Region &r = regions_.back();
        e = MemoEntry{r.host, r.bytes, r.sim - r.host};
    }
    for (MemoEntry &slot : m.recent)
        slot = e;
    m.at = 0;
}

uint64_t
AddressArena::translateScan(uintptr_t addr, Memo &m) const
{
    // Newest region first: a freed-and-reallocated host address must
    // resolve to its latest registration.
    for (size_t i = regions_.size(); i-- > 0;) {
        const Region &r = regions_[i];
        if (addr >= r.host && addr < r.host + r.bytes) {
            m.recent[m.at] = MemoEntry{r.host, r.bytes, r.sim - r.host};
            m.at = (m.at + 1) & 3u;
            return r.sim + (addr - r.host);
        }
    }
    return addr; // unregistered (stack scalar, pre-scope allocation)
}

AddressArena::Scope::Scope() : prev_(tlsCurrent_)
{
    tlsCurrent_ = &arena_;
}

AddressArena::Scope::~Scope()
{
    tlsCurrent_ = prev_;
}

} // namespace rfl
