/**
 * @file
 * Stable (process- and run-independent) hashing for cache keys.
 *
 * The campaign ResultCache persists results across runs keyed by a hash
 * of the experiment description, so the hash must not depend on pointer
 * values, std::hash seeds, or field padding. Fnv1a accumulates typed
 * fields explicitly; doubles are mixed by bit pattern.
 */

#ifndef RFL_SUPPORT_HASH_HH
#define RFL_SUPPORT_HASH_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace rfl
{

/** Incremental 64-bit FNV-1a over explicitly mixed fields. */
class Fnv1a
{
  public:
    Fnv1a() = default;

    Fnv1a &mixBytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
        return *this;
    }

    Fnv1a &mix(uint64_t v) { return mixBytes(&v, sizeof(v)); }
    Fnv1a &mix(int64_t v) { return mix(static_cast<uint64_t>(v)); }
    Fnv1a &mix(int v) { return mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
    Fnv1a &mix(uint32_t v) { return mix(static_cast<uint64_t>(v)); }
    Fnv1a &mix(bool v) { return mix(static_cast<uint64_t>(v ? 1 : 0)); }

    Fnv1a &mix(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return mix(bits);
    }

    /** Strings mix length then bytes so "ab","c" != "a","bc". */
    Fnv1a &mix(const std::string &s)
    {
        mix(static_cast<uint64_t>(s.size()));
        return mixBytes(s.data(), s.size());
    }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xcbf29ce484222325ull; // FNV offset basis
};

/** @return hex rendering of a hash value (16 lowercase digits). */
inline std::string
hashToHex(uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace rfl

#endif // RFL_SUPPORT_HASH_HH
