/**
 * @file
 * Deterministic simulated-address assignment for kernel operands.
 *
 * The simulated machine indexes caches, TLBs and NUMA pages by the
 * addresses the engines present. Using raw host pointers makes the
 * simulation depend on heap layout — allocation order, malloc reuse and
 * ASLR would all perturb conflict misses and page placement, so two runs
 * of the *same* experiment could disagree. That breaks both campaign
 * determinism (N-thread == 1-thread) and content-addressed result
 * caching across processes.
 *
 * An AddressArena fixes the simulated address space instead: while a
 * Scope is active on the current thread, every AlignedBuffer allocation
 * registers itself and receives a canonical base address — sequential
 * 2 MiB-aligned regions starting at 4 GiB — and SimEngine translates
 * host pointers through the active arena before touching the machine.
 * The address trace of a measurement then depends only on the kernel and
 * its allocation sequence, never on the host.
 *
 * Without an active scope, translation is the identity (host addresses
 * pass through, the pre-campaign behaviour).
 */

#ifndef RFL_SUPPORT_ADDRESS_ARENA_HH
#define RFL_SUPPORT_ADDRESS_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfl
{

/** See file comment. */
class AddressArena
{
  public:
    /** First canonical base: clear of the identity-mapped low range. */
    static constexpr uint64_t baseAddress = 1ull << 32;
    /** Region alignment: buffers never share a page or cache set tail. */
    static constexpr uint64_t regionAlign = 2ull << 20;

    AddressArena() = default;

    /**
     * Record a host allocation and @return its canonical simulated base.
     * Called by AlignedBuffer::reset() when a scope is active.
     */
    uint64_t registerRegion(const void *host, size_t bytes);

    /**
     * @return the simulated address of @p p: its offset within the most
     * recently registered region containing it, rebased to that region's
     * canonical base; identity for unregistered pointers.
     */
    uint64_t translatePointer(const void *p) const;

    /** Arena active on this thread, or nullptr. */
    static AddressArena *current();

    /** translatePointer() through current(); identity without a scope. */
    static uint64_t translate(const void *p);

    /**
     * RAII activation: installs a fresh arena as the current thread's
     * translation context, restoring the previous one on destruction
     * (scopes nest; the innermost wins). Defined after the class body —
     * it holds an arena by value.
     */
    class Scope;

  private:
    struct Region
    {
        uintptr_t host;
        size_t bytes;
        uint64_t sim;
    };

    std::vector<Region> regions_;
    uint64_t next_ = baseAddress;
    /**
     * Index of the last region a translation hit. Streaming kernels
     * issue long runs of accesses into one buffer, so checking it first
     * makes the hot path one range compare (translate is called for
     * every simulated load/store).
     */
    mutable size_t lastHit_ = 0;
};

/** See the declaration inside AddressArena. */
class AddressArena::Scope
{
  public:
    Scope();
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    AddressArena &arena() { return arena_; }

  private:
    AddressArena arena_;
    AddressArena *prev_;
};

} // namespace rfl

#endif // RFL_SUPPORT_ADDRESS_ARENA_HH
