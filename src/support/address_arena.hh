/**
 * @file
 * Deterministic simulated-address assignment for kernel operands.
 *
 * The simulated machine indexes caches, TLBs and NUMA pages by the
 * addresses the engines present. Using raw host pointers makes the
 * simulation depend on heap layout — allocation order, malloc reuse and
 * ASLR would all perturb conflict misses and page placement, so two runs
 * of the *same* experiment could disagree. That breaks both campaign
 * determinism (N-thread == 1-thread) and content-addressed result
 * caching across processes.
 *
 * An AddressArena fixes the simulated address space instead: while a
 * Scope is active on the current thread, every AlignedBuffer allocation
 * registers itself and receives a canonical base address — sequential
 * 2 MiB-aligned regions starting at 4 GiB — and SimEngine translates
 * host pointers through the active arena before touching the machine.
 * The address trace of a measurement then depends only on the kernel and
 * its allocation sequence, never on the host.
 *
 * Without an active scope, translation is the identity (host addresses
 * pass through, the pre-campaign behaviour).
 */

#ifndef RFL_SUPPORT_ADDRESS_ARENA_HH
#define RFL_SUPPORT_ADDRESS_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfl
{

/** See file comment. */
class AddressArena
{
  public:
    /** First canonical base: clear of the identity-mapped low range. */
    static constexpr uint64_t baseAddress = 1ull << 32;
    /** Region alignment: buffers never share a page or cache set tail. */
    static constexpr uint64_t regionAlign = 2ull << 20;

    AddressArena() = default;

    /**
     * Record a host allocation and @return its canonical simulated base.
     * Called by AlignedBuffer::reset() when a scope is active.
     */
    uint64_t registerRegion(const void *host, size_t bytes);

    /**
     * @return the simulated address of @p p: its offset within the most
     * recently registered region containing it, rebased to that region's
     * canonical base; identity for unregistered pointers.
     *
     * Inline fast path: translate() runs for every simulated load and
     * store, and streaming kernels overwhelmingly stay inside the last
     * region hit, so the memo check must not cost a function call.
     */
    uint64_t
    translatePointer(const void *p) const
    {
        const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
        // The memo can never point at a shadowed (freed-then-reused)
        // host range: registerRegion() resets it whenever a new region
        // appears. Four entries so kernels cycling through up to four
        // operand buffers (triad's a/b/c) stay on the fast path.
        for (size_t idx : recent_) {
            if (idx < regions_.size()) {
                const Region &r = regions_[idx];
                if (addr - r.host < r.bytes) // unsigned: rejects < host
                    return r.sim + (addr - r.host);
            }
        }
        return translateScan(addr);
    }

    /** Arena active on this thread, or nullptr. */
    static AddressArena *current() { return tlsCurrent_; }

    /** translatePointer() through current(); identity without a scope. */
    static uint64_t
    translate(const void *p)
    {
        const AddressArena *arena = tlsCurrent_;
        if (!arena)
            return reinterpret_cast<uintptr_t>(p);
        return arena->translatePointer(p);
    }

    /**
     * RAII activation: installs a fresh arena as the current thread's
     * translation context, restoring the previous one on destruction
     * (scopes nest; the innermost wins). Defined after the class body —
     * it holds an arena by value.
     */
    class Scope;

  private:
    struct Region
    {
        uintptr_t host;
        size_t bytes;
        uint64_t sim;
    };

    /** Memo-miss path: scan regions newest-first; identity on no match.*/
    uint64_t translateScan(uintptr_t addr) const;

    static thread_local AddressArena *tlsCurrent_;

    std::vector<Region> regions_;
    uint64_t next_ = baseAddress;
    /**
     * Round-robin memo of regions recent translations hit. Streaming
     * kernels cycle through a handful of operand buffers, so almost
     * every translation resolves against one of these with a couple of
     * range compares (translate is called for every simulated
     * load/store). Entries are reset by registerRegion() so they can
     * never point at a shadowed (freed-then-reallocated) host range.
     */
    mutable size_t recent_[4] = {0, 0, 0, 0};
    mutable uint32_t recentAt_ = 0;
};

/** See the declaration inside AddressArena. */
class AddressArena::Scope
{
  public:
    Scope();
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    AddressArena &arena() { return arena_; }

  private:
    AddressArena arena_;
    AddressArena *prev_;
};

} // namespace rfl

#endif // RFL_SUPPORT_ADDRESS_ARENA_HH
