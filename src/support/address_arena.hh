/**
 * @file
 * Deterministic simulated-address assignment for kernel operands.
 *
 * The simulated machine indexes caches, TLBs and NUMA pages by the
 * addresses the engines present. Using raw host pointers makes the
 * simulation depend on heap layout — allocation order, malloc reuse and
 * ASLR would all perturb conflict misses and page placement, so two runs
 * of the *same* experiment could disagree. That breaks both campaign
 * determinism (N-thread == 1-thread) and content-addressed result
 * caching across processes.
 *
 * An AddressArena fixes the simulated address space instead: while a
 * Scope is active on the current thread, every AlignedBuffer allocation
 * registers itself and receives a canonical base address — sequential
 * 2 MiB-aligned regions starting at 4 GiB — and SimEngine translates
 * host pointers through the active arena before touching the machine.
 * The address trace of a measurement then depends only on the kernel and
 * its allocation sequence, never on the host.
 *
 * Without an active scope, translation is the identity (host addresses
 * pass through, the pre-campaign behaviour).
 */

#ifndef RFL_SUPPORT_ADDRESS_ARENA_HH
#define RFL_SUPPORT_ADDRESS_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfl
{

/** See file comment. */
class AddressArena
{
  public:
    /** First canonical base: clear of the identity-mapped low range. */
    static constexpr uint64_t baseAddress = 1ull << 32;
    /** Region alignment: buffers never share a page or cache set tail. */
    static constexpr uint64_t regionAlign = 2ull << 20;

    AddressArena(); // defined in the .cc: draws a globally unique epoch

    /**
     * Record a host allocation and @return its canonical simulated base.
     * Called by AlignedBuffer::reset() when a scope is active.
     */
    uint64_t registerRegion(const void *host, size_t bytes);

    /**
     * @return the simulated address of @p p: its offset within the most
     * recently registered region containing it, rebased to that region's
     * canonical base; identity for unregistered pointers.
     *
     * Inline fast path: translate() runs for every simulated load and
     * store, and streaming kernels overwhelmingly stay inside the last
     * region hit, so the memo check must not cost a function call.
     *
     * Thread safety: the memo lives in thread-local storage (keyed by
     * arena identity + registration epoch), so any number of threads
     * may translate through the same arena concurrently — required by
     * Machine::drainParallel(), where per-core worker threads all read
     * one arena. Concurrent registerRegion() calls are NOT allowed:
     * register every buffer before entering a parallel section.
     */
    uint64_t
    translatePointer(const void *p) const
    {
        const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
        Memo &m = tlsMemo_;
        if (m.arena != this || m.epoch != epoch_) [[unlikely]]
            rebindMemo(m);
        // The memo can never point at a shadowed (freed-then-reused)
        // host range: the epoch check above rebinds it whenever a new
        // region appears. Entries hold the resolved (host, bytes, delta)
        // triple, so a hit is one subtract and compare with no region-
        // table indirection. Four entries so kernels cycling through up
        // to four operand buffers (triad's a/b/c) stay on the fast path.
        for (const MemoEntry &e : m.recent) {
            if (addr - e.host < e.bytes) // unsigned: rejects < host
                return addr + e.delta;
        }
        return translateScan(addr, m);
    }

    /** Arena active on this thread, or nullptr. */
    static AddressArena *current() { return tlsCurrent_; }

    /** translatePointer() through current(); identity without a scope. */
    static uint64_t
    translate(const void *p)
    {
        const AddressArena *arena = tlsCurrent_;
        if (!arena)
            return reinterpret_cast<uintptr_t>(p);
        return arena->translatePointer(p);
    }

    /**
     * RAII activation: installs a fresh arena as the current thread's
     * translation context, restoring the previous one on destruction
     * (scopes nest; the innermost wins). Defined after the class body —
     * it holds an arena by value.
     */
    class Scope;

    /**
     * RAII adoption of an EXISTING arena on the current thread:
     * installs @p arena as this thread's translation context and
     * restores the previous one on destruction. Used by parallel-drain
     * worker threads so every core's kernel closure translates through
     * the arena the main thread's Scope established (thread_local
     * tlsCurrent_ does not propagate into pool threads by itself).
     * Adopting nullptr is allowed and makes translation the identity.
     */
    class Adoption
    {
      public:
        explicit Adoption(AddressArena *arena) : prev_(tlsCurrent_)
        {
            tlsCurrent_ = arena;
        }
        ~Adoption() { tlsCurrent_ = prev_; }
        Adoption(const Adoption &) = delete;
        Adoption &operator=(const Adoption &) = delete;

      private:
        AddressArena *prev_;
    };

  private:
    struct Region
    {
        uintptr_t host;
        size_t bytes;
        uint64_t sim;
    };

    /**
     * Per-thread translation memo: round-robin cache of the region
     * indices recent translations hit. Streaming kernels cycle through
     * a handful of operand buffers, so almost every translation
     * resolves against one of these with a couple of range compares
     * (translate is called for every simulated load/store). Keyed by
     * (arena, epoch): a registerRegion() bumps the epoch, invalidating
     * every thread's memo so it can never point at a shadowed
     * (freed-then-reallocated) host range.
     */
    /** One resolved region: sim = host address + delta (mod 2^64). An
     *  empty slot has bytes == 0 and can never match. */
    struct MemoEntry
    {
        uintptr_t host = 0;
        size_t bytes = 0;
        uint64_t delta = 0;
    };

    struct Memo
    {
        const AddressArena *arena = nullptr;
        uint64_t epoch = 0;
        MemoEntry recent[4];
        uint32_t at = 0;
    };

    /** Memo-miss path: scan regions newest-first; identity on no match.*/
    uint64_t translateScan(uintptr_t addr, Memo &m) const;

    /** Point @p m at this arena's newest region (cold path). */
    void rebindMemo(Memo &m) const;

    static thread_local AddressArena *tlsCurrent_;
    static thread_local Memo tlsMemo_;

    std::vector<Region> regions_;
    uint64_t next_ = baseAddress;
    /**
     * Drawn from a process-global monotonic counter at construction and
     * on every registerRegion(), so it invalidates every thread's memo —
     * including memos left by a DIFFERENT arena that happened to occupy
     * the same address (Scope holds the arena by value, so consecutive
     * scopes reuse a stack slot; a per-arena counter would repeat and
     * let a stale memo resolve a reused host range with the old
     * arena's delta).
     */
    uint64_t epoch_;
};

/** See the declaration inside AddressArena. */
class AddressArena::Scope
{
  public:
    Scope();
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    AddressArena &arena() { return arena_; }

  private:
    AddressArena arena_;
    AddressArena *prev_;
};

} // namespace rfl

#endif // RFL_SUPPORT_ADDRESS_ARENA_HH
