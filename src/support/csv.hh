/**
 * @file
 * CSV writer for experiment output. Every bench binary dumps its raw data
 * as CSV next to the gnuplot files so results can be post-processed.
 */

#ifndef RFL_SUPPORT_CSV_HH
#define RFL_SUPPORT_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace rfl
{

/**
 * Streams rows of cells into a CSV file, RFC-4180-style quoting.
 *
 * The file is created on construction and flushed/closed on destruction.
 * Writing to an unopenable path calls fatal().
 */
class CsvWriter
{
  public:
    /** Open @p path for writing and emit the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one data row; must match the header arity. */
    void addRow(const std::vector<std::string> &cells);

    /** Convenience overload for all-numeric rows. */
    void addRow(const std::vector<double> &cells);

    /** @return the path the writer is writing to. */
    const std::string &path() const { return path_; }

    /** @return number of data rows written so far. */
    size_t rowCount() const { return rows_; }

    /** Quote a cell per RFC 4180 if it contains comma/quote/newline. */
    static std::string quote(const std::string &cell);

  private:
    void writeRow(const std::vector<std::string> &cells);

    std::string path_;
    std::ofstream out_;
    size_t arity_;
    size_t rows_ = 0;
};

/** Ensure a directory exists (mkdir -p semantics); fatal() on failure. */
void ensureDirectory(const std::string &path);

} // namespace rfl

#endif // RFL_SUPPORT_CSV_HH
