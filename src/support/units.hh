/**
 * @file
 * Human-readable formatting and parsing of byte/flop/rate quantities.
 */

#ifndef RFL_SUPPORT_UNITS_HH
#define RFL_SUPPORT_UNITS_HH

#include <cstdint>
#include <string>

namespace rfl
{

/** Kibibyte/mebibyte/gibibyte multipliers. */
constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

/** Format a byte count with a binary suffix, e.g. "20.0 MiB". */
std::string formatBytes(double bytes);

/** Format an operation count with an SI suffix, e.g. "2.0 Gflops". */
std::string formatFlops(double flops);

/** Format a rate in flops/s with an SI suffix, e.g. "38.4 Gflop/s". */
std::string formatFlopRate(double flops_per_sec);

/** Format a rate in bytes/s with an SI suffix, e.g. "12.8 GB/s". */
std::string formatByteRate(double bytes_per_sec);

/** Format a duration given in seconds, picking ns/us/ms/s. */
std::string formatSeconds(double seconds);

/** Format a double with @p digits significant digits. */
std::string formatSig(double v, int digits = 4);

/**
 * Parse a size expression such as "64", "32k", "20M", "1G"
 * (case-insensitive, binary multipliers). Calls fatal() on garbage.
 */
uint64_t parseSize(const std::string &text);

} // namespace rfl

#endif // RFL_SUPPORT_UNITS_HH
