/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * Two error channels are distinguished (following the gem5 convention):
 *   - panic():  an internal invariant was violated (a bug in this library);
 *               aborts so a debugger/core dump can capture the state.
 *   - fatal():  the user asked for something impossible (bad configuration,
 *               invalid arguments); exits with status 1.
 *
 * Non-fatal channels:
 *   - warn():   something is off but execution can continue.
 *   - inform(): status messages.
 *
 * Every channel goes through ONE structured stderr sink: each line is
 * "<RFC3339-UTC timestamp> <level>[ rid]: <message>". stdout stays
 * clean for program output — results, tables, JSON — so piping a CLI
 * into a file or another tool never interleaves diagnostics into the
 * data (inform() historically went to stdout and did exactly that).
 * The optional request id is thread-local, set via LogContext: the
 * service tags every line a request emits with the same id that lands
 * in the job's trace spans.
 */

#ifndef RFL_SUPPORT_LOGGING_HH
#define RFL_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace rfl
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * What fatal() throws in throwing mode (see setFatalThrows): the
 * formatted message is what()’s text. Long-lived processes (the
 * roofline service) catch this at request/job boundaries and turn it
 * into an error response instead of dying.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Exit(1) with a formatted message; use for user-caused errors. In
 * throwing mode (setFatalThrows(true)) it throws FatalError instead,
 * so a resident process can reject one bad request and keep serving.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Route fatal() to throw FatalError instead of exiting the process.
 * Process-global: a daemon sets it once at startup, before spawning
 * workers. CLI tools keep the default (exit) so shell pipelines see
 * status 1. @return the previous setting.
 */
bool setFatalThrows(bool enable);

/** @return whether fatal() currently throws instead of exiting. */
bool fatalThrows();

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr (never stdout; see file comment). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * RAII thread-local request-id tag: while alive, every log line this
 * thread emits carries "rid=<id>" after the level. Scopes nest (the
 * innermost non-empty id wins); an empty id leaves lines untagged.
 */
class LogContext
{
  public:
    explicit LogContext(std::string requestId);
    ~LogContext();

    LogContext(const LogContext &) = delete;
    LogContext &operator=(const LogContext &) = delete;

    /** The calling thread's current request id ("" when untagged). */
    static const std::string &currentRequestId();

  private:
    std::string prev_;
};

/** Enable/disable inform() output globally (warnings are never muted). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

/**
 * Assert-like check that is always compiled in.
 * Calls panic() with the stringified condition when @p cond is false.
 */
#define RFL_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rfl::panic("assertion failed: %s (%s:%d)", #cond, __FILE__, \
                         __LINE__);                                        \
        }                                                                  \
    } while (0)

} // namespace rfl

#endif // RFL_SUPPORT_LOGGING_HH
