/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * Two error channels are distinguished (following the gem5 convention):
 *   - panic():  an internal invariant was violated (a bug in this library);
 *               aborts so a debugger/core dump can capture the state.
 *   - fatal():  the user asked for something impossible (bad configuration,
 *               invalid arguments); exits with status 1.
 *
 * Non-fatal channels:
 *   - warn():   something is off but execution can continue.
 *   - inform(): status messages.
 *
 * All channels go to stderr except inform(), which goes to stdout.
 */

#ifndef RFL_SUPPORT_LOGGING_HH
#define RFL_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace rfl
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * What fatal() throws in throwing mode (see setFatalThrows): the
 * formatted message is what()’s text. Long-lived processes (the
 * roofline service) catch this at request/job boundaries and turn it
 * into an error response instead of dying.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Exit(1) with a formatted message; use for user-caused errors. In
 * throwing mode (setFatalThrows(true)) it throws FatalError instead,
 * so a resident process can reject one bad request and keep serving.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Route fatal() to throw FatalError instead of exiting the process.
 * Process-global: a daemon sets it once at startup, before spawning
 * workers. CLI tools keep the default (exit) so shell pipelines see
 * status 1. @return the previous setting.
 */
bool setFatalThrows(bool enable);

/** @return whether fatal() currently throws instead of exiting. */
bool fatalThrows();

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output globally (warnings are never muted). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

/**
 * Assert-like check that is always compiled in.
 * Calls panic() with the stringified condition when @p cond is false.
 */
#define RFL_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rfl::panic("assertion failed: %s (%s:%d)", #cond, __FILE__, \
                         __LINE__);                                        \
        }                                                                  \
    } while (0)

} // namespace rfl

#endif // RFL_SUPPORT_LOGGING_HH
