/**
 * @file
 * Small-sample statistics used by the measurement layer.
 *
 * The roofline methodology repeats every measurement several times and
 * reports a summary; following the paper we keep the median (robust against
 * OS noise on the native backend) alongside mean/stdev and a simple 95%
 * confidence interval.
 */

#ifndef RFL_SUPPORT_STATISTICS_HH
#define RFL_SUPPORT_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace rfl
{

/**
 * Accumulates a sample of doubles and produces summary statistics.
 *
 * All summary queries are valid once at least one value has been added;
 * stdev()/ci95() return 0 for samples of size < 2.
 */
class Sample
{
  public:
    Sample() = default;

    /** Add one observation. */
    void add(double v);

    /** Add a batch of observations. */
    void addAll(const std::vector<double> &vs);

    /** Remove all observations. */
    void clear();

    /** @return number of observations. */
    size_t count() const { return values_.size(); }

    /** @return true when no observation has been added. */
    bool empty() const { return values_.empty(); }

    /** @return arithmetic mean (0 when empty). */
    double mean() const;

    /** @return sample standard deviation, n-1 denominator. */
    double stdev() const;

    /** @return half-width of a normal-approximation 95% CI of the mean. */
    double ci95() const;

    /** @return smallest observation (0 when empty). */
    double min() const;

    /** @return largest observation (0 when empty). */
    double max() const;

    /**
     * @return median of the sample (0 when empty). Even-sized samples
     * return the average of the two central order statistics.
     */
    double median() const;

    /**
     * @return the q-quantile (0 <= q <= 1) by linear interpolation
     * between closest ranks.
     */
    double quantile(double q) const;

    /** @return coefficient of variation stdev()/mean() (0 if mean is 0). */
    double cv() const;

    /** @return the raw observations in insertion order. */
    const std::vector<double> &values() const { return values_; }

  private:
    /** Sorted copy of the data, rebuilt lazily for order statistics. */
    std::vector<double> sorted() const;

    std::vector<double> values_;
};

/** @return relative error |measured - expected| / |expected| (0/0 -> 0). */
double relativeError(double measured, double expected);

/** @return geometric mean of a vector of positive values (0 when empty). */
double geomean(const std::vector<double> &vs);

} // namespace rfl

#endif // RFL_SUPPORT_STATISTICS_HH
