/**
 * @file
 * Cooperative cancellation: wall-clock deadlines for long simulations.
 *
 * A CancelToken carries an optional deadline and an optional shared
 * abort flag; a CancelScope binds one token to the current thread
 * (RAII, nests). Long-running code polls at natural boundaries —
 * the simulator checks once per batch drain (Machine::simulateBatch),
 * the campaign executor between job stages — via checkCancelled(),
 * which throws TimedOutError once the bound token expires.
 *
 * Cost model: with no token bound (every CLI run, every campaign
 * without a timeout) a check is one thread-local pointer load and a
 * predictable branch — nothing else. With a token bound it adds one
 * relaxed atomic load plus a steady_clock read per check; drain
 * boundaries are hundreds of accesses apart, so this stays far below
 * the sim-throughput noise floor.
 *
 * The campaign executor builds one token per job (deadline = the
 * earlier of the campaign's `timeout =` deadline and the job's
 * ExecutorOptions::jobTimeoutSeconds budget), all linked to one
 * per-run abort flag: the first job to time out flips the flag and
 * every other in-flight job of the same campaign unwinds at its next
 * drain check instead of running to completion.
 */

#ifndef RFL_SUPPORT_CANCEL_HH
#define RFL_SUPPORT_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace rfl
{

/** Thrown by checkCancelled() when the bound token has expired; the
 *  service maps it to the TimedOut job state, the CLI to exit 1. */
class TimedOutError : public std::runtime_error
{
  public:
    explicit TimedOutError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** See file comment. */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Expire once the wall clock reaches @p tp. */
    void
    setDeadline(std::chrono::steady_clock::time_point tp)
    {
        deadline_ = tp;
        hasDeadline_ = true;
    }

    /** Expire @p seconds from now. */
    void
    setDeadlineIn(double seconds)
    {
        setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds)));
    }

    /** Share @p flag: the token also expires once *flag is true. */
    void
    linkAbortFlag(const std::atomic<bool> *flag)
    {
        abort_ = flag;
    }

    /** Immediate cancellation (sets this token's own flag). */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool
    expired() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (abort_ && abort_->load(std::memory_order_relaxed))
            return true;
        return hasDeadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

  private:
    std::atomic<bool> cancelled_{false};
    const std::atomic<bool> *abort_ = nullptr;
    std::chrono::steady_clock::time_point deadline_{};
    bool hasDeadline_ = false;
};

namespace detail
{
/** The innermost bound token of this thread (null = no deadline). */
extern thread_local const CancelToken *tlCancelToken;
} // namespace detail

/** RAII thread binding; nests (innermost token wins, outer restored). */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken *token)
        : prev_(detail::tlCancelToken)
    {
        detail::tlCancelToken = token;
    }

    ~CancelScope() { detail::tlCancelToken = prev_; }

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *prev_;
};

/** @return whether the bound token (if any) has expired. */
inline bool
cancelPending()
{
    const CancelToken *token = detail::tlCancelToken;
    return token != nullptr && token->expired();
}

/** Throw TimedOutError (with @p what as context) if a bound token has
 *  expired; no-op — one TLS load — otherwise. */
void checkCancelled(const char *what = nullptr);

} // namespace rfl

#endif // RFL_SUPPORT_CANCEL_HH
