/**
 * @file
 * Fixed-size host thread pool used by the campaign executor.
 *
 * The simulator is deterministic and its timing model is independent of
 * host time, so independent simulations can run on as many host threads
 * as are available without perturbing results. The pool is deliberately
 * minimal: submit() enqueues a task, wait() blocks until every submitted
 * task (including tasks submitted *by* running tasks, as the campaign
 * executor does when a job unblocks its dependents) has finished.
 *
 * A task that throws does not kill the process (the pre-hardening
 * behavior was std::terminate via the unwound worker loop): the first
 * exception is captured and rethrown by the next wait() on the
 * submitter's thread, so the campaign executor — and through it the
 * service job queue — sees worker failures as ordinary exceptions.
 * Later exceptions from the same batch are dropped (first one wins);
 * the pool stays usable after the rethrow.
 */

#ifndef RFL_SUPPORT_THREAD_POOL_HH
#define RFL_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/logging.hh"

namespace rfl
{

/** See file comment. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 = one per host hardware thread. */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            threads = hw ? static_cast<int>(hw) : 1;
        }
        workers_.reserve(static_cast<size_t>(threads));
        for (int i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe to call from within a running task. */
    void submit(std::function<void()> task)
    {
        RFL_ASSERT(task != nullptr);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            RFL_ASSERT(!stopping_);
            queue_.push_back(std::move(task));
            ++pending_;
        }
        cv_.notify_one();
    }

    /**
     * Block until every submitted task has completed (the queue is empty
     * and no worker is mid-task). Tasks may submit follow-up work before
     * returning; wait() covers those too. Rethrows the first exception
     * any task threw since the last wait() (see file comment).
     */
    void wait()
    {
        std::exception_ptr failure;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            idle_.wait(lock, [this] { return pending_ == 0; });
            std::swap(failure, failure_);
        }
        if (failure)
            std::rethrow_exception(failure);
    }

    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            std::exception_ptr failure;
            try {
                task();
            } catch (...) {
                failure = std::current_exception();
            }
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (failure && !failure_)
                    failure_ = failure;
                if (--pending_ == 0)
                    idle_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;   ///< work available / stopping
    std::condition_variable idle_; ///< pending_ reached zero
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t pending_ = 0; ///< queued + running tasks
    bool stopping_ = false;
    /** First uncollected task exception; dropped if never wait()ed. */
    std::exception_ptr failure_;
};

} // namespace rfl

#endif // RFL_SUPPORT_THREAD_POOL_HH
