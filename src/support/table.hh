/**
 * @file
 * ASCII table writer used by the bench binaries to print reproduced
 * paper tables in a uniform format.
 */

#ifndef RFL_SUPPORT_TABLE_HH
#define RFL_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace rfl
{

/**
 * Accumulates rows of strings and renders them with aligned columns.
 *
 * Numeric-looking cells are right-aligned, text cells left-aligned.
 * Intended use:
 * @code
 *   Table t({"kernel", "n", "W expected", "W measured", "err %"});
 *   t.addRow({"daxpy", "1024", "2048", "2048", "0.00"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: clear all rows, keeping the header. */
    void clearRows();

    /** @return number of data rows. */
    size_t rowCount() const { return rows_.size(); }

    /** Render to @p os with a rule under the header. */
    void print(std::ostream &os) const;

    /** Render to a string (used by tests). */
    std::string toString() const;

  private:
    /** @return true when the cell parses as a number (right-align it). */
    static bool looksNumeric(const std::string &cell);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rfl

#endif // RFL_SUPPORT_TABLE_HH
