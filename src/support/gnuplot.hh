/**
 * @file
 * Gnuplot emission helpers.
 *
 * Each reproduced figure is written as a pair of files:
 *   <name>.dat — whitespace-separated series blocks (gnuplot `index` style)
 *   <name>.gp  — a plotting script referencing the .dat file
 * so that `gnuplot <name>.gp` regenerates the paper figure offline.
 */

#ifndef RFL_SUPPORT_GNUPLOT_HH
#define RFL_SUPPORT_GNUPLOT_HH

#include <string>
#include <vector>

namespace rfl
{

/** One named (x, y) series with an optional per-point label. */
struct GnuplotSeries
{
    std::string title;
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<std::string> labels; // optional; empty or per-point
};

/**
 * Collects series and writes the .dat/.gp file pair.
 *
 * The default style is the roofline style of the paper: log-log axes,
 * x = operational intensity [flops/byte], y = performance [flops/cycle
 * or Gflop/s].
 */
class GnuplotWriter
{
  public:
    /**
     * @param directory output directory (created if missing)
     * @param name      figure stem, used for <name>.dat / <name>.gp
     * @param plot_title      title line of the plot
     */
    GnuplotWriter(std::string directory, std::string name,
                  std::string plot_title);

    /** Axis labels; defaults match roofline plots. */
    void setAxes(std::string xlabel, std::string ylabel, bool loglog = true);

    /** Append one series. xs/ys must have equal length. */
    void addSeries(GnuplotSeries series);

    /** Add a series drawn with lines (used for roofs/ceilings). */
    void addLineSeries(const std::string &title,
                       const std::vector<double> &xs,
                       const std::vector<double> &ys);

    /** Add a series drawn with labeled points (used for kernels). */
    void addPointSeries(const std::string &title,
                        const std::vector<double> &xs,
                        const std::vector<double> &ys,
                        const std::vector<std::string> &labels = {});

    /** Write the .dat and .gp files; @return the .gp path. */
    std::string write() const;

    /** @return number of series added so far. */
    size_t seriesCount() const { return series_.size(); }

  private:
    struct Entry
    {
        GnuplotSeries series;
        bool lines;
    };

    std::string directory_;
    std::string name_;
    std::string title_;
    std::string xlabel_ = "Operational intensity [flops/byte]";
    std::string ylabel_ = "Performance [Gflop/s]";
    bool loglog_ = true;
    std::vector<Entry> series_;
};

} // namespace rfl

#endif // RFL_SUPPORT_GNUPLOT_HH
