#include "support/retry.hh"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "support/cancel.hh"
#include "telemetry/metrics.hh"

namespace rfl
{

namespace
{

struct RetryCounters
{
    telemetry::Counter &attempts;
    telemetry::Counter &success;
    telemetry::Counter &exhausted;
};

RetryCounters
countersFor(const char *op)
{
    telemetry::Registry &reg = telemetry::Registry::global();
    const telemetry::Labels labels{{"op", op}};
    return RetryCounters{
        reg.counter("rfl_retry_attempts_total",
                    "re-attempts after a transient failure", labels),
        reg.counter("rfl_retry_success_total",
                    "operations that recovered within the retry budget",
                    labels),
        reg.counter("rfl_retry_exhausted_total",
                    "operations that failed every attempt", labels),
    };
}

} // namespace

bool
retryWithBackoff(const char *op, const RetryPolicy &policy,
                 const std::function<bool()> &attempt)
{
    // Jitter stream: thread-local so concurrent retriers decorrelate,
    // seeded once per thread (quality is irrelevant, distinctness is
    // the point).
    thread_local std::mt19937_64 rng{std::random_device{}()};

    const int attempts = std::max(policy.attempts, 1);
    for (int i = 0; i < attempts; ++i) {
        if (i > 0) {
            RetryCounters c = countersFor(op);
            c.attempts.inc();
            const double exp =
                policy.baseDelayMs * static_cast<double>(1u << (i - 1));
            const double jitter =
                0.5 + std::uniform_real_distribution<double>(
                          0.0, 1.0)(rng);
            const double delayMs =
                std::min(exp * jitter, policy.maxDelayMs);
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(delayMs));
            // Sliced like the failpoint sleep: a deadlined job's
            // backoff must still honor the deadline.
            while (std::chrono::steady_clock::now() < until) {
                checkCancelled("retry backoff");
                std::this_thread::sleep_for(
                    std::min<std::chrono::steady_clock::duration>(
                        until - std::chrono::steady_clock::now(),
                        std::chrono::milliseconds(20)));
            }
        }
        if (attempt()) {
            if (i > 0)
                countersFor(op).success.inc();
            return true;
        }
    }
    countersFor(op).exhausted.inc();
    return false;
}

} // namespace rfl
