#include "support/table.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace rfl
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RFL_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("Table::addRow: %zu cells for %zu columns", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
Table::clearRows()
{
    rows_.clear();
}

bool
Table::looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    char *end = nullptr;
    std::strtod(cell.c_str(), &end);
    // Allow a trailing '%' or unit-ish residue of at most 4 chars.
    return end != cell.c_str() &&
           static_cast<size_t>(end - cell.c_str()) + 4 >= cell.size();
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            const bool right = looksNumeric(row[c]);
            os << (c == 0 ? "| " : " ");
            os << (right ? std::right : std::left)
               << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace rfl
