/**
 * @file
 * Interval-sampling hook invariants (sim::Machine::setSamplePeriod).
 *
 * The sampler must be architecturally invisible: for every registered
 * kernel, a run with sampling enabled at any period leaves every
 * Snapshot counter bit-identical to the unsampled run. And the samples
 * must be self-consistent: cumulative snapshots are monotone in the
 * additive counters, and the per-interval deltas (plus the tail
 * interval to the region end) sum exactly to the region total — the
 * property the phase-trajectory layer (analysis/phase.hh) is built on.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analysis/phase.hh"
#include "kernels/engine.hh"
#include "kernels/registry.hh"
#include "sim/machine.hh"
#include "support/address_arena.hh"

namespace
{

using namespace rfl;
using namespace rfl::sim;

/** Small-size spec per kernel: big enough to leave L1, quick to run. */
const std::map<std::string, std::string> &
smallSpecs()
{
    static const std::map<std::string, std::string> specs = {
        {"daxpy", "daxpy:n=4096"},
        {"dot", "dot:n=4096"},
        {"triad", "triad:n=4096"},
        {"triad-nt", "triad-nt:n=4096"},
        {"sum", "sum:n=4096"},
        {"stencil3", "stencil3:n=4096"},
        {"dgemv", "dgemv:m=96,n=96"},
        {"dgemm-naive", "dgemm-naive:n=40"},
        {"dgemm-blocked", "dgemm-blocked:n=40,block=16"},
        {"dgemm-opt", "dgemm-opt:n=40"},
        {"fft", "fft:n=1024"},
        {"spmv-csr", "spmv-csr:rows=512,nnz=8"},
        {"strided-sum", "strided-sum:n=8192,stride=16"},
        {"pointer-chase", "pointer-chase:nodes=1024,hops=4096"},
    };
    return specs;
}

struct RunResult
{
    Machine::Snapshot delta;
    std::vector<Machine::Snapshot> samples;
    Machine::Snapshot start;
    Machine::Snapshot end;
};

RunResult
runKernel(const std::string &spec, uint64_t sample_period)
{
    Machine machine(MachineConfig::defaultPlatform());

    AddressArena::Scope scope;
    auto kernel = kernels::createKernel(spec);
    kernel->init(42);
    machine.setDependentAccesses(kernel->dependentAccesses());
    machine.setSamplePeriod(sample_period);

    RunResult r;
    r.start = machine.snapshot();
    {
        kernels::SimEngine engine(machine, 0, 4, true);
        kernel->run(engine, 0, 1);
    }
    machine.flushAllCaches();
    r.end = machine.snapshot();
    machine.setSamplePeriod(0);
    r.delta = r.end - r.start;
    r.samples = machine.samples();
    return r;
}

void
expectEqual(const Machine::Snapshot &ref, const Machine::Snapshot &got,
            const std::string &ctx)
{
    ASSERT_EQ(ref.cores.size(), got.cores.size()) << ctx;
    for (size_t c = 0; c < ref.cores.size(); ++c) {
        const CoreCounters &a = ref.cores[c];
        const CoreCounters &b = got.cores[c];
        const std::string at = ctx + " core" + std::to_string(c);
        for (size_t w = 0; w < 4; ++w)
            EXPECT_EQ(a.fpRetired[w], b.fpRetired[w])
                << at << " fpRetired[" << w << "]";
        EXPECT_EQ(a.fpUops, b.fpUops) << at << " fpUops";
        EXPECT_EQ(a.loadUops, b.loadUops) << at << " loadUops";
        EXPECT_EQ(a.storeUops, b.storeUops) << at << " storeUops";
        EXPECT_EQ(a.otherUops, b.otherUops) << at << " otherUops";
        EXPECT_EQ(a.l2FillBytes, b.l2FillBytes) << at << " l2FillBytes";
        EXPECT_EQ(a.l3FillBytes, b.l3FillBytes) << at << " l3FillBytes";
        EXPECT_EQ(a.dramFillBytes, b.dramFillBytes)
            << at << " dramFillBytes";
        EXPECT_EQ(a.ntStoreBytes, b.ntStoreBytes)
            << at << " ntStoreBytes";
        EXPECT_EQ(a.dramWritebackBytes, b.dramWritebackBytes)
            << at << " dramWritebackBytes";
        EXPECT_EQ(a.latencyCycles, b.latencyCycles)
            << at << " latencyCycles";
    }
    auto expect_cache = [&](const std::vector<CacheStats> &ra,
                            const std::vector<CacheStats> &rb,
                            const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const CacheStats &a = ra[i];
            const CacheStats &b = rb[i];
            const std::string at =
                ctx + " " + level + "[" + std::to_string(i) + "]";
            EXPECT_EQ(a.readHits, b.readHits) << at;
            EXPECT_EQ(a.readMisses, b.readMisses) << at;
            EXPECT_EQ(a.writeHits, b.writeHits) << at;
            EXPECT_EQ(a.writeMisses, b.writeMisses) << at;
            EXPECT_EQ(a.writebacks, b.writebacks) << at;
            EXPECT_EQ(a.prefetchFills, b.prefetchFills) << at;
            EXPECT_EQ(a.prefetchHits, b.prefetchHits) << at;
        }
    };
    expect_cache(ref.l1, got.l1, "l1");
    expect_cache(ref.l2, got.l2, "l2");
    expect_cache(ref.l3, got.l3, "l3");
    ASSERT_EQ(ref.imcs.size(), got.imcs.size()) << ctx;
    for (size_t i = 0; i < ref.imcs.size(); ++i) {
        EXPECT_EQ(ref.imcs[i].casReads, got.imcs[i].casReads) << ctx;
        EXPECT_EQ(ref.imcs[i].casWrites, got.imcs[i].casWrites) << ctx;
        EXPECT_EQ(ref.imcs[i].prefetchReads, got.imcs[i].prefetchReads)
            << ctx;
        EXPECT_EQ(ref.imcs[i].ntWrites, got.imcs[i].ntWrites) << ctx;
    }
    ASSERT_EQ(ref.tlbs.size(), got.tlbs.size()) << ctx;
    for (size_t i = 0; i < ref.tlbs.size(); ++i) {
        EXPECT_EQ(ref.tlbs[i].accesses, got.tlbs[i].accesses) << ctx;
        EXPECT_EQ(ref.tlbs[i].l1Misses, got.tlbs[i].l1Misses) << ctx;
        EXPECT_EQ(ref.tlbs[i].walks, got.tlbs[i].walks) << ctx;
    }
}

TEST(IntervalSampling, TotalsBitIdenticalForAllRegisteredKernels)
{
    size_t sampled_runs_with_samples = 0;
    for (const std::string &name : kernels::kernelNames()) {
        const auto it = smallSpecs().find(name);
        ASSERT_NE(it, smallSpecs().end())
            << "kernel '" << name
            << "' has no small spec; extend smallSpecs()";
        const std::string &spec = it->second;

        const RunResult unsampled = runKernel(spec, 0);
        EXPECT_TRUE(unsampled.samples.empty()) << spec;
        for (const uint64_t period : {512ull, 4096ull}) {
            const RunResult sampled = runKernel(spec, period);
            expectEqual(unsampled.delta, sampled.delta,
                        spec + " period=" + std::to_string(period));
            sampled_runs_with_samples +=
                sampled.samples.empty() ? 0 : 1;
        }
    }
    // The invariant is only meaningful if sampling actually fired.
    EXPECT_GT(sampled_runs_with_samples, 0u);
}

TEST(IntervalSampling, IntervalDeltasSumToRegionTotal)
{
    const RunResult r = runKernel("fft:n=4096", 512);
    ASSERT_GT(r.samples.size(), 2u);

    uint64_t flops = 0, cas_reads = 0, cas_writes = 0, accesses = 0;
    const Machine::Snapshot *prev = &r.start;
    auto add_interval = [&](const Machine::Snapshot &s) {
        const Machine::Snapshot d = s - *prev;
        flops += d.totalFlops();
        cas_reads += d.totalImc().casReads;
        cas_writes += d.totalImc().casWrites;
        for (const CoreCounters &cc : d.cores)
            accesses += cc.loadUops + cc.storeUops;
        prev = &s;
    };
    for (const Machine::Snapshot &s : r.samples)
        add_interval(s);
    add_interval(r.end);

    EXPECT_EQ(flops, r.delta.totalFlops());
    EXPECT_EQ(cas_reads, r.delta.totalImc().casReads);
    EXPECT_EQ(cas_writes, r.delta.totalImc().casWrites);
    uint64_t total_accesses = 0;
    for (const CoreCounters &cc : r.delta.cores)
        total_accesses += cc.loadUops + cc.storeUops;
    EXPECT_EQ(accesses, total_accesses);

    // Consecutive samples are at least a period of accesses apart.
    for (size_t i = 1; i < r.samples.size(); ++i) {
        uint64_t a = 0, b = 0;
        for (const CoreCounters &cc : r.samples[i - 1].cores)
            a += cc.loadUops + cc.storeUops;
        for (const CoreCounters &cc : r.samples[i].cores)
            b += cc.loadUops + cc.storeUops;
        EXPECT_GE(b - a, 512u) << "sample " << i;
    }
}

TEST(IntervalSampling, PhaseTrajectoryMatchesTotals)
{
    Machine machine(MachineConfig::defaultPlatform());
    roofline::MeasureOptions opts;
    opts.repetitions = 1;
    const analysis::PhaseTrajectory traj =
        analysis::samplePhasesSpec(machine, "fft:n=4096", opts, 512);

    ASSERT_GT(traj.points.size(), 2u);
    double flops = 0, bytes = 0;
    for (const analysis::PhasePoint &p : traj.points) {
        flops += p.flops;
        bytes += p.trafficBytes;
        EXPECT_GE(p.seconds, 0.0);
    }
    // Counter deltas are additive, so the sums are exact.
    EXPECT_EQ(flops, traj.totalFlops);
    EXPECT_EQ(bytes, traj.totalTrafficBytes);
    EXPECT_GT(traj.totalFlops, 0.0);
    EXPECT_GT(traj.totalSeconds, 0.0);
    EXPECT_EQ(traj.kernel, "fft");
    EXPECT_EQ(traj.protocol, "cold");
    EXPECT_EQ(traj.period, 512u);

    // The sampler was disabled again on the way out.
    EXPECT_EQ(machine.samplePeriod(), 0u);
    EXPECT_TRUE(machine.samples().empty());
}

} // namespace
