/**
 * @file
 * Golden counter-equivalence test for the demand-access fast path.
 *
 * The simulator's hot path memoizes the last-translated page and the
 * most recently hit L1 lines per core (see DESIGN.md §7). The contract
 * is that these shortcuts are *invisible*: every counter in a
 * Machine::Snapshot — core retirement, per-level cache stats, TLB
 * stats, prefetcher stats, IMC CAS counters — must be bit-identical
 * between a run with the fast path enabled (the default) and a run on
 * the straight-line reference path (setFastPath(false)).
 *
 * Every registered kernel is driven through SimEngine in both modes on
 * the default platform and compared field-by-field. Variants cover the
 * regimes the memos interact with: scalar vs vector width, prefetchers
 * on vs off, multi-core partitions, non-temporal stores, and
 * dependent (pointer-chasing) accesses.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kernels/engine.hh"
#include "kernels/registry.hh"
#include "sim/machine.hh"
#include "support/address_arena.hh"

namespace
{

using namespace rfl;
using namespace rfl::sim;

/** Small-size spec per kernel: big enough to leave L1, quick to run. */
const std::map<std::string, std::string> &
smallSpecs()
{
    static const std::map<std::string, std::string> specs = {
        {"daxpy", "daxpy:n=4096"},
        {"dot", "dot:n=4096"},
        {"triad", "triad:n=4096"},
        {"triad-nt", "triad-nt:n=4096"},
        {"sum", "sum:n=4096"},
        {"stencil3", "stencil3:n=4096"},
        {"dgemv", "dgemv:m=96,n=96"},
        {"dgemm-naive", "dgemm-naive:n=40"},
        {"dgemm-blocked", "dgemm-blocked:n=40,block=16"},
        {"dgemm-opt", "dgemm-opt:n=40"},
        {"fft", "fft:n=1024"},
        {"spmv-csr", "spmv-csr:rows=512,nnz=8"},
        {"strided-sum", "strided-sum:n=8192,stride=16"},
        {"pointer-chase", "pointer-chase:nodes=1024,hops=4096"},
    };
    return specs;
}

struct RunOpts
{
    int lanes = 4;
    int cores = 1;
    bool prefetch = true;
    bool flush = true; ///< end with flushAllCaches (writeback coverage)
};

Machine::Snapshot
runKernel(const std::string &spec, bool fast_path, const RunOpts &opts)
{
    Machine machine(MachineConfig::defaultPlatform());
    machine.setFastPath(fast_path);
    machine.setPrefetchEnabled(opts.prefetch);

    AddressArena::Scope scope;
    auto kernel = kernels::createKernel(spec);
    kernel->init(42);
    machine.setDependentAccesses(kernel->dependentAccesses());

    const Machine::Snapshot before = machine.snapshot();
    const int parts = kernel->parallelizable() ? opts.cores : 1;
    for (int c = 0; c < parts; ++c) {
        kernels::SimEngine engine(machine, c, opts.lanes, true);
        kernel->run(engine, c, parts);
    }
    if (opts.flush)
        machine.flushAllCaches();
    return machine.snapshot() - before;
}

void
expectEqual(const Machine::Snapshot &ref, const Machine::Snapshot &fast,
            const std::string &ctx)
{
    ASSERT_EQ(ref.cores.size(), fast.cores.size()) << ctx;
    for (size_t c = 0; c < ref.cores.size(); ++c) {
        const CoreCounters &a = ref.cores[c];
        const CoreCounters &b = fast.cores[c];
        const std::string at = ctx + " core" + std::to_string(c);
        for (size_t w = 0; w < 4; ++w)
            EXPECT_EQ(a.fpRetired[w], b.fpRetired[w])
                << at << " fpRetired[" << w << "]";
        EXPECT_EQ(a.fpUops, b.fpUops) << at << " fpUops";
        EXPECT_EQ(a.loadUops, b.loadUops) << at << " loadUops";
        EXPECT_EQ(a.storeUops, b.storeUops) << at << " storeUops";
        EXPECT_EQ(a.otherUops, b.otherUops) << at << " otherUops";
        EXPECT_EQ(a.l2FillBytes, b.l2FillBytes) << at << " l2FillBytes";
        EXPECT_EQ(a.l3FillBytes, b.l3FillBytes) << at << " l3FillBytes";
        EXPECT_EQ(a.dramFillBytes, b.dramFillBytes)
            << at << " dramFillBytes";
        EXPECT_EQ(a.ntStoreBytes, b.ntStoreBytes) << at << " ntStoreBytes";
        EXPECT_EQ(a.dramWritebackBytes, b.dramWritebackBytes)
            << at << " dramWritebackBytes";
        EXPECT_EQ(a.latencyCycles, b.latencyCycles)
            << at << " latencyCycles";
    }

    auto expect_cache = [&](const std::vector<CacheStats> &ra,
                            const std::vector<CacheStats> &rb,
                            const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const CacheStats &a = ra[i];
            const CacheStats &b = rb[i];
            const std::string at =
                ctx + " " + level + "[" + std::to_string(i) + "]";
            EXPECT_EQ(a.readHits, b.readHits) << at << " readHits";
            EXPECT_EQ(a.readMisses, b.readMisses) << at << " readMisses";
            EXPECT_EQ(a.writeHits, b.writeHits) << at << " writeHits";
            EXPECT_EQ(a.writeMisses, b.writeMisses) << at << " writeMisses";
            EXPECT_EQ(a.writebacks, b.writebacks) << at << " writebacks";
            EXPECT_EQ(a.prefetchFills, b.prefetchFills)
                << at << " prefetchFills";
            EXPECT_EQ(a.prefetchHits, b.prefetchHits)
                << at << " prefetchHits";
        }
    };
    expect_cache(ref.l1, fast.l1, "l1");
    expect_cache(ref.l2, fast.l2, "l2");
    expect_cache(ref.l3, fast.l3, "l3");

    ASSERT_EQ(ref.imcs.size(), fast.imcs.size()) << ctx;
    for (size_t i = 0; i < ref.imcs.size(); ++i) {
        const ImcStats &a = ref.imcs[i];
        const ImcStats &b = fast.imcs[i];
        const std::string at = ctx + " imc[" + std::to_string(i) + "]";
        EXPECT_EQ(a.casReads, b.casReads) << at << " casReads";
        EXPECT_EQ(a.casWrites, b.casWrites) << at << " casWrites";
        EXPECT_EQ(a.prefetchReads, b.prefetchReads)
            << at << " prefetchReads";
        EXPECT_EQ(a.ntWrites, b.ntWrites) << at << " ntWrites";
    }

    ASSERT_EQ(ref.tlbs.size(), fast.tlbs.size()) << ctx;
    for (size_t i = 0; i < ref.tlbs.size(); ++i) {
        const TlbStats &a = ref.tlbs[i];
        const TlbStats &b = fast.tlbs[i];
        const std::string at = ctx + " tlb[" + std::to_string(i) + "]";
        EXPECT_EQ(a.accesses, b.accesses) << at << " accesses";
        EXPECT_EQ(a.l1Misses, b.l1Misses) << at << " l1Misses";
        EXPECT_EQ(a.walks, b.walks) << at << " walks";
    }

    auto expect_pf = [&](const std::vector<PrefetcherStats> &ra,
                         const std::vector<PrefetcherStats> &rb,
                         const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const std::string at =
                ctx + " " + level + "pf[" + std::to_string(i) + "]";
            EXPECT_EQ(ra[i].observed, rb[i].observed) << at << " observed";
            EXPECT_EQ(ra[i].issued, rb[i].issued) << at << " issued";
            EXPECT_EQ(ra[i].streamsAllocated, rb[i].streamsAllocated)
                << at << " streamsAllocated";
        }
    };
    expect_pf(ref.l1pf, fast.l1pf, "l1");
    expect_pf(ref.l2pf, fast.l2pf, "l2");
}

void
compareModes(const std::string &spec, const RunOpts &opts,
             const std::string &ctx)
{
    const Machine::Snapshot ref = runKernel(spec, false, opts);
    const Machine::Snapshot fast = runKernel(spec, true, opts);
    expectEqual(ref, fast, ctx);
}

/** The spec table must cover every registered kernel. */
TEST(FastPathEquivalence, SpecTableCoversRegistry)
{
    for (const std::string &name : kernels::kernelNames())
        EXPECT_TRUE(smallSpecs().count(name))
            << "no equivalence spec for kernel '" << name
            << "' — add one to smallSpecs()";
}

TEST(FastPathEquivalence, EveryKernelVectorPrefetchOn)
{
    for (const auto &[name, spec] : smallSpecs())
        compareModes(spec, RunOpts{}, name + " lanes=4 pf=on");
}

TEST(FastPathEquivalence, EveryKernelScalarPrefetchOff)
{
    RunOpts opts;
    opts.lanes = 1;
    opts.prefetch = false;
    for (const auto &[name, spec] : smallSpecs())
        compareModes(spec, opts, name + " lanes=1 pf=off");
}

TEST(FastPathEquivalence, StreamingKernelsMultiCore)
{
    RunOpts opts;
    opts.cores = 4; // spans both sockets' cores on the default platform
    for (const char *name : {"daxpy", "triad", "triad-nt", "dot"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " cores=4");
}

TEST(FastPathEquivalence, Sse2Width)
{
    RunOpts opts;
    opts.lanes = 2;
    for (const char *name : {"daxpy", "fft", "stencil3"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " lanes=2");
}

TEST(FastPathEquivalence, WithoutTrailingFlush)
{
    RunOpts opts;
    opts.flush = false;
    for (const char *name : {"daxpy", "triad-nt", "pointer-chase"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " no-flush");
}

/** Back-to-back regions on one machine (memos survive resetStats). */
TEST(FastPathEquivalence, RepeatedRegionsOnOneMachine)
{
    auto run = [](bool fast_path) {
        Machine machine(MachineConfig::defaultPlatform());
        machine.setFastPath(fast_path);
        AddressArena::Scope scope;
        auto kernel = kernels::createKernel("daxpy:n=4096");
        kernel->init(7);
        Machine::Snapshot acc{};
        for (int rep = 0; rep < 3; ++rep) {
            const Machine::Snapshot before = machine.snapshot();
            kernels::SimEngine engine(machine, 0, 4, true);
            kernel->run(engine, 0, 1);
            if (rep == 1)
                machine.flushAllCaches(); // cold-cache protocol mid-way
            acc = machine.snapshot() - before; // keep last region
        }
        return acc;
    };
    expectEqual(run(false), run(true), "daxpy repeated regions");
}

} // namespace
