/**
 * @file
 * Golden counter-equivalence test for the simulator's accelerated
 * demand-access paths.
 *
 * Three paths produce the same architectural history and must be
 * mutually indistinguishable in every counter of a Machine::Snapshot —
 * core retirement, per-level cache stats, TLB stats, prefetcher stats,
 * IMC CAS counters:
 *
 *   - Reference: per-access engine dispatch, fast path off
 *     (setFastPath(false)): plain set-scan lookups, no memos.
 *   - FastDirect: per-access dispatch with the PR 2 memos (resident-line
 *     filter, page streaks; DESIGN.md §7).
 *   - Batched: the access-stream IR — the engine buffers records into
 *     AccessBatches that Machine::simulateBatch() consumes, coalescing
 *     same-line runs into bulk counter updates (DESIGN.md §8).
 *
 * Every registered kernel is driven through SimEngine on the default
 * platform and compared field-by-field against the reference. Variants
 * cover the regimes the memos and the coalescer interact with: scalar
 * vs vector width, prefetchers on vs off, multi-core partitions,
 * non-temporal stores, dependent (pointer-chasing) accesses — and, for
 * the batched path, batch limits {1, 7, 256, capacity} so that flush
 * boundaries land mid-streak (a limit of 7 splits every prefetch streak
 * of a streaming kernel) without perturbing a single counter.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kernels/engine.hh"
#include "kernels/parallel_drain.hh"
#include "kernels/registry.hh"
#include "sim/machine.hh"
#include "support/address_arena.hh"
#include "trace/access_batch.hh"

namespace
{

using namespace rfl;
using namespace rfl::sim;

/** Small-size spec per kernel: big enough to leave L1, quick to run. */
const std::map<std::string, std::string> &
smallSpecs()
{
    static const std::map<std::string, std::string> specs = {
        {"daxpy", "daxpy:n=4096"},
        {"dot", "dot:n=4096"},
        {"triad", "triad:n=4096"},
        {"triad-nt", "triad-nt:n=4096"},
        {"sum", "sum:n=4096"},
        {"stencil3", "stencil3:n=4096"},
        {"dgemv", "dgemv:m=96,n=96"},
        {"dgemm-naive", "dgemm-naive:n=40"},
        {"dgemm-blocked", "dgemm-blocked:n=40,block=16"},
        {"dgemm-opt", "dgemm-opt:n=40"},
        {"fft", "fft:n=1024"},
        {"spmv-csr", "spmv-csr:rows=512,nnz=8"},
        {"strided-sum", "strided-sum:n=8192,stride=16"},
        {"pointer-chase", "pointer-chase:nodes=1024,hops=4096"},
    };
    return specs;
}

/** Which accelerated path a run exercises (see file comment). */
enum class PathMode
{
    Reference,  ///< per-access dispatch, memos off
    FastDirect, ///< per-access dispatch, PR 2 memos on
    Batched,    ///< IR batches through Machine::simulateBatch
};

struct RunOpts
{
    int lanes = 4;
    int cores = 1;
    bool prefetch = true;
    bool flush = true; ///< end with flushAllCaches (writeback coverage)
    /** SIMD classification pre-pass in simulateBatch (Batched mode). */
    bool simd = true;
    /** Records buffered per flush (Batched mode only). */
    uint32_t batchLimit = rfl::trace::AccessBatch::capacity;
};

Machine::Snapshot
runKernel(const std::string &spec, PathMode mode, const RunOpts &opts)
{
    Machine machine(MachineConfig::defaultPlatform());
    machine.setFastPath(mode != PathMode::Reference);
    machine.setPrefetchEnabled(opts.prefetch);
    machine.setSimdClassify(opts.simd);

    AddressArena::Scope scope;
    auto kernel = kernels::createKernel(spec);
    kernel->init(42);
    machine.setDependentAccesses(kernel->dependentAccesses());

    const auto dispatch = mode == PathMode::Batched
                              ? kernels::SimEngine::Dispatch::Batched
                              : kernels::SimEngine::Dispatch::Direct;
    const Machine::Snapshot before = machine.snapshot();
    const int parts = kernel->parallelizable() ? opts.cores : 1;
    for (int c = 0; c < parts; ++c) {
        kernels::SimEngine engine(machine, c, opts.lanes, true,
                                  dispatch);
        if (mode == PathMode::Batched)
            engine.setBatchLimit(opts.batchLimit);
        kernel->run(engine, c, parts);
    }
    if (opts.flush)
        machine.flushAllCaches();
    return machine.snapshot() - before;
}

void
expectEqual(const Machine::Snapshot &ref, const Machine::Snapshot &fast,
            const std::string &ctx)
{
    ASSERT_EQ(ref.cores.size(), fast.cores.size()) << ctx;
    for (size_t c = 0; c < ref.cores.size(); ++c) {
        const CoreCounters &a = ref.cores[c];
        const CoreCounters &b = fast.cores[c];
        const std::string at = ctx + " core" + std::to_string(c);
        for (size_t w = 0; w < 4; ++w)
            EXPECT_EQ(a.fpRetired[w], b.fpRetired[w])
                << at << " fpRetired[" << w << "]";
        EXPECT_EQ(a.fpUops, b.fpUops) << at << " fpUops";
        EXPECT_EQ(a.loadUops, b.loadUops) << at << " loadUops";
        EXPECT_EQ(a.storeUops, b.storeUops) << at << " storeUops";
        EXPECT_EQ(a.otherUops, b.otherUops) << at << " otherUops";
        EXPECT_EQ(a.l2FillBytes, b.l2FillBytes) << at << " l2FillBytes";
        EXPECT_EQ(a.l3FillBytes, b.l3FillBytes) << at << " l3FillBytes";
        EXPECT_EQ(a.dramFillBytes, b.dramFillBytes)
            << at << " dramFillBytes";
        EXPECT_EQ(a.ntStoreBytes, b.ntStoreBytes) << at << " ntStoreBytes";
        EXPECT_EQ(a.dramWritebackBytes, b.dramWritebackBytes)
            << at << " dramWritebackBytes";
        EXPECT_EQ(a.latencyCycles, b.latencyCycles)
            << at << " latencyCycles";
    }

    auto expect_cache = [&](const std::vector<CacheStats> &ra,
                            const std::vector<CacheStats> &rb,
                            const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const CacheStats &a = ra[i];
            const CacheStats &b = rb[i];
            const std::string at =
                ctx + " " + level + "[" + std::to_string(i) + "]";
            EXPECT_EQ(a.readHits, b.readHits) << at << " readHits";
            EXPECT_EQ(a.readMisses, b.readMisses) << at << " readMisses";
            EXPECT_EQ(a.writeHits, b.writeHits) << at << " writeHits";
            EXPECT_EQ(a.writeMisses, b.writeMisses) << at << " writeMisses";
            EXPECT_EQ(a.writebacks, b.writebacks) << at << " writebacks";
            EXPECT_EQ(a.prefetchFills, b.prefetchFills)
                << at << " prefetchFills";
            EXPECT_EQ(a.prefetchHits, b.prefetchHits)
                << at << " prefetchHits";
        }
    };
    expect_cache(ref.l1, fast.l1, "l1");
    expect_cache(ref.l2, fast.l2, "l2");
    expect_cache(ref.l3, fast.l3, "l3");

    ASSERT_EQ(ref.imcs.size(), fast.imcs.size()) << ctx;
    for (size_t i = 0; i < ref.imcs.size(); ++i) {
        const ImcStats &a = ref.imcs[i];
        const ImcStats &b = fast.imcs[i];
        const std::string at = ctx + " imc[" + std::to_string(i) + "]";
        EXPECT_EQ(a.casReads, b.casReads) << at << " casReads";
        EXPECT_EQ(a.casWrites, b.casWrites) << at << " casWrites";
        EXPECT_EQ(a.prefetchReads, b.prefetchReads)
            << at << " prefetchReads";
        EXPECT_EQ(a.ntWrites, b.ntWrites) << at << " ntWrites";
    }

    ASSERT_EQ(ref.tlbs.size(), fast.tlbs.size()) << ctx;
    for (size_t i = 0; i < ref.tlbs.size(); ++i) {
        const TlbStats &a = ref.tlbs[i];
        const TlbStats &b = fast.tlbs[i];
        const std::string at = ctx + " tlb[" + std::to_string(i) + "]";
        EXPECT_EQ(a.accesses, b.accesses) << at << " accesses";
        EXPECT_EQ(a.l1Misses, b.l1Misses) << at << " l1Misses";
        EXPECT_EQ(a.walks, b.walks) << at << " walks";
    }

    auto expect_pf = [&](const std::vector<PrefetcherStats> &ra,
                         const std::vector<PrefetcherStats> &rb,
                         const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const std::string at =
                ctx + " " + level + "pf[" + std::to_string(i) + "]";
            EXPECT_EQ(ra[i].observed, rb[i].observed) << at << " observed";
            EXPECT_EQ(ra[i].issued, rb[i].issued) << at << " issued";
            EXPECT_EQ(ra[i].streamsAllocated, rb[i].streamsAllocated)
                << at << " streamsAllocated";
        }
    };
    expect_pf(ref.l1pf, fast.l1pf, "l1");
    expect_pf(ref.l2pf, fast.l2pf, "l2");
}

void
compareModes(const std::string &spec, const RunOpts &opts,
             const std::string &ctx)
{
    const Machine::Snapshot ref =
        runKernel(spec, PathMode::Reference, opts);
    const Machine::Snapshot fast =
        runKernel(spec, PathMode::FastDirect, opts);
    expectEqual(ref, fast, ctx + " [fast-direct]");
}

/** Batch limits that exercise flush boundaries: every record alone,
 *  boundaries splitting prefetch streaks (7 is coprime to the 8-access
 *  line streak of a scalar streaming kernel), a mid-size batch, and the
 *  production capacity. */
const uint32_t kBatchLimits[] = {1, 7, 256,
                                 rfl::trace::AccessBatch::capacity};

void
compareBatched(const std::string &spec, const RunOpts &opts,
               const std::string &ctx)
{
    const Machine::Snapshot ref =
        runKernel(spec, PathMode::Reference, opts);
    for (uint32_t limit : kBatchLimits) {
        RunOpts bopts = opts;
        bopts.batchLimit = limit;
        const Machine::Snapshot batched =
            runKernel(spec, PathMode::Batched, bopts);
        expectEqual(ref, batched,
                    ctx + " [batched limit=" + std::to_string(limit) +
                        "]");
    }
}

/** The spec table must cover every registered kernel. */
TEST(FastPathEquivalence, SpecTableCoversRegistry)
{
    for (const std::string &name : kernels::kernelNames())
        EXPECT_TRUE(smallSpecs().count(name))
            << "no equivalence spec for kernel '" << name
            << "' — add one to smallSpecs()";
}

TEST(FastPathEquivalence, EveryKernelVectorPrefetchOn)
{
    for (const auto &[name, spec] : smallSpecs())
        compareModes(spec, RunOpts{}, name + " lanes=4 pf=on");
}

TEST(FastPathEquivalence, EveryKernelScalarPrefetchOff)
{
    RunOpts opts;
    opts.lanes = 1;
    opts.prefetch = false;
    for (const auto &[name, spec] : smallSpecs())
        compareModes(spec, opts, name + " lanes=1 pf=off");
}

TEST(FastPathEquivalence, StreamingKernelsMultiCore)
{
    RunOpts opts;
    opts.cores = 4; // spans both sockets' cores on the default platform
    for (const char *name : {"daxpy", "triad", "triad-nt", "dot"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " cores=4");
}

TEST(FastPathEquivalence, Sse2Width)
{
    RunOpts opts;
    opts.lanes = 2;
    for (const char *name : {"daxpy", "fft", "stencil3"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " lanes=2");
}

TEST(FastPathEquivalence, WithoutTrailingFlush)
{
    RunOpts opts;
    opts.flush = false;
    for (const char *name : {"daxpy", "triad-nt", "pointer-chase"})
        compareModes(smallSpecs().at(name), opts,
                     std::string(name) + " no-flush");
}

/** Back-to-back regions on one machine (memos survive resetStats; a
 *  batched engine is drained by every snapshot and mid-region flush). */
TEST(FastPathEquivalence, RepeatedRegionsOnOneMachine)
{
    auto run = [](PathMode mode) {
        Machine machine(MachineConfig::defaultPlatform());
        machine.setFastPath(mode != PathMode::Reference);
        AddressArena::Scope scope;
        auto kernel = kernels::createKernel("daxpy:n=4096");
        kernel->init(7);
        const auto dispatch =
            mode == PathMode::Batched
                ? kernels::SimEngine::Dispatch::Batched
                : kernels::SimEngine::Dispatch::Direct;
        Machine::Snapshot acc{};
        for (int rep = 0; rep < 3; ++rep) {
            const Machine::Snapshot before = machine.snapshot();
            kernels::SimEngine engine(machine, 0, 4, true, dispatch);
            kernel->run(engine, 0, 1);
            // Cold-cache protocol mid-way: the engine still holds
            // buffered records here in batched mode; the flush and the
            // snapshot below must drain them in program order.
            if (rep == 1)
                machine.flushAllCaches();
            acc = machine.snapshot() - before; // keep last region
        }
        return acc;
    };
    expectEqual(run(PathMode::Reference), run(PathMode::FastDirect),
                "daxpy repeated regions [fast-direct]");
    expectEqual(run(PathMode::Reference), run(PathMode::Batched),
                "daxpy repeated regions [batched]");
}

// ---------------------------------------------------------------------
// Batched (access-stream IR) golden tests: reference vs simulateBatch.
// ---------------------------------------------------------------------

/** Every registered kernel, every Snapshot counter, across batch
 *  limits {1, 7, 256, capacity} — boundaries must be invisible even
 *  when they split a prefetch streak. */
TEST(BatchedEquivalence, EveryKernelVectorPrefetchOnAcrossBatchLimits)
{
    for (const auto &[name, spec] : smallSpecs())
        compareBatched(spec, RunOpts{}, name + " lanes=4 pf=on");
}

TEST(BatchedEquivalence, EveryKernelScalarPrefetchOff)
{
    RunOpts opts;
    opts.lanes = 1;
    opts.prefetch = false;
    for (const auto &[name, spec] : smallSpecs())
        compareBatched(spec, opts, name + " lanes=1 pf=off");
}

TEST(BatchedEquivalence, StreamingKernelsMultiCore)
{
    RunOpts opts;
    opts.cores = 4; // spans both sockets' cores on the default platform
    for (const char *name : {"daxpy", "triad", "triad-nt", "dot"})
        compareBatched(smallSpecs().at(name), opts,
                       std::string(name) + " cores=4");
}

TEST(BatchedEquivalence, WithoutTrailingFlush)
{
    RunOpts opts;
    opts.flush = false;
    for (const char *name : {"daxpy", "triad-nt", "pointer-chase"})
        compareBatched(smallSpecs().at(name), opts,
                       std::string(name) + " no-flush");
}

/** The SIMD classification pre-pass is a pure accelerator: with it
 *  disabled (scalar window building), every kernel still matches the
 *  reference bit-for-bit — including at adversarial flush boundaries. */
TEST(BatchedEquivalence, EveryKernelSimdClassifyOff)
{
    RunOpts opts;
    opts.simd = false;
    for (const auto &[name, spec] : smallSpecs())
        compareBatched(spec, opts, name + " simd=off");
}

/** A batch interleaving records of several cores, consumed without a
 *  core override, must split into same-core spans and match the
 *  per-access call sequence (the path multi-core trace replays use). */
TEST(BatchedEquivalence, MultiCoreBatchSegmentation)
{
    auto access = [](Machine &, auto &&touch) {
        // Interleaved per-core streams: same-line streaks, a line
        // shared between cores, and a page change.
        for (uint64_t i = 0; i < 512; ++i) {
            const int core = static_cast<int>(i & 3);
            const uint64_t addr =
                (1ull << 32) + (i & 3) * 8192 + (i / 4) * 8;
            touch(core, addr);
            if ((i & 7) == 7)
                touch(core, (1ull << 32) + 4 * 8192); // shared line
        }
    };

    Machine direct(MachineConfig::defaultPlatform());
    access(direct, [&](int core, uint64_t addr) {
        direct.load(core, addr, 8);
    });

    Machine batched(MachineConfig::defaultPlatform());
    rfl::trace::AccessBatch batch;
    access(batched, [&](int core, uint64_t addr) {
        if (batch.full()) {
            batched.simulateBatch(batch);
            batch.clear();
        }
        batch.pushMem(rfl::trace::AccessKind::Load, core, addr, 8);
    });
    batched.simulateBatch(batch);

    expectEqual(direct.snapshot(), batched.snapshot(),
                "multi-core segmentation");
}

// ---------------------------------------------------------------------
// Parallel drain golden tests: reference vs Machine::drainParallel.
// ---------------------------------------------------------------------

/** runKernel() counterpart that drains the per-core streams through
 *  runPartitionedParallel() on @p threads host threads. */
Machine::Snapshot
runKernelParallel(const std::string &spec, int threads,
                  const RunOpts &opts)
{
    Machine machine(MachineConfig::defaultPlatform());
    machine.setFastPath(true);
    machine.setPrefetchEnabled(opts.prefetch);
    machine.setSimdClassify(opts.simd);

    AddressArena::Scope scope;
    auto kernel = kernels::createKernel(spec);
    kernel->init(42);
    machine.setDependentAccesses(kernel->dependentAccesses());

    const int parts = kernel->parallelizable() ? opts.cores : 1;
    std::vector<int> cores;
    for (int c = 0; c < parts; ++c)
        cores.push_back(c);

    const Machine::Snapshot before = machine.snapshot();
    kernels::runPartitionedParallel(machine, *kernel, cores, opts.lanes,
                                    true, threads);
    if (opts.flush)
        machine.flushAllCaches();
    return machine.snapshot() - before;
}

/** Host thread counts: the degenerate single worker (defer + merge with
 *  no concurrency), a real 2-way split, and oversubscription (8 workers
 *  on however many host cores exist). */
const int kThreadCounts[] = {1, 2, 8};

/** Every registered kernel: snapshots are bit-identical to the
 *  sequential reference for every host thread count, single-core
 *  partitioning (the degenerate session every kernel supports). */
TEST(ParallelDrainEquivalence, EveryKernelAcrossThreadCounts)
{
    for (const auto &[name, spec] : smallSpecs()) {
        const Machine::Snapshot ref =
            runKernel(spec, PathMode::Reference, RunOpts{});
        for (int threads : kThreadCounts)
            expectEqual(ref, runKernelParallel(spec, threads, RunOpts{}),
                        name + " [parallel t=" +
                            std::to_string(threads) + "]");
    }
}

/** Multi-core partitions: four per-core streams draining concurrently,
 *  shared L3/IMC effects merged deterministically. */
TEST(ParallelDrainEquivalence, StreamingKernelsMultiCore)
{
    RunOpts opts;
    opts.cores = 4; // spans both sockets' cores on the default platform
    for (const char *name : {"daxpy", "triad", "triad-nt", "dot"}) {
        const std::string &spec = smallSpecs().at(name);
        const Machine::Snapshot ref =
            runKernel(spec, PathMode::Reference, opts);
        for (int threads : kThreadCounts)
            expectEqual(ref, runKernelParallel(spec, threads, opts),
                        std::string(name) + " cores=4 [parallel t=" +
                            std::to_string(threads) + "]");
    }
}

/** Parallel drain with the scalar window builder (SIMD off) and with
 *  prefetchers off: the deferred-op log must be identical no matter
 *  which classification path produced it. */
TEST(ParallelDrainEquivalence, SimdOffAndPrefetchOff)
{
    RunOpts opts;
    opts.cores = 4;
    opts.simd = false;
    opts.prefetch = false;
    for (const char *name : {"daxpy", "triad-nt", "stencil3"}) {
        const std::string &spec = smallSpecs().at(name);
        const Machine::Snapshot ref =
            runKernel(spec, PathMode::Reference, opts);
        for (int threads : kThreadCounts)
            expectEqual(ref, runKernelParallel(spec, threads, opts),
                        std::string(name) +
                            " simd=off pf=off [parallel t=" +
                            std::to_string(threads) + "]");
    }
}

} // namespace
