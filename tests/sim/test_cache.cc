/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace
{

using namespace rfl::sim;

CacheConfig
tinyConfig(ReplPolicy repl = ReplPolicy::LRU)
{
    // 4 sets x 2 ways x 64 B = 512 B.
    return {"T", 512, 2, 64, repl, 4, 64.0};
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.lookup(100, false));
    c.fill(100, false, false);
    EXPECT_TRUE(c.lookup(100, false));
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_EQ(c.stats().readHits, 1u);
}

TEST(Cache, WriteDirtiesLine)
{
    Cache c(tinyConfig());
    c.lookup(5, true);
    c.fill(5, true, false);
    EXPECT_TRUE(c.isDirty(5));
    EXPECT_EQ(c.stats().writeMisses, 1u);
}

TEST(Cache, ReadFillIsClean)
{
    Cache c(tinyConfig());
    c.fill(5, false, false);
    EXPECT_FALSE(c.isDirty(5));
}

TEST(Cache, SetDirtyOnPresentLine)
{
    Cache c(tinyConfig());
    c.fill(9, false, false);
    EXPECT_TRUE(c.setDirty(9));
    EXPECT_TRUE(c.isDirty(9));
    EXPECT_FALSE(c.setDirty(1234)); // absent
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig(ReplPolicy::LRU));
    // Set 0 holds line addresses that are multiples of 4 (4 sets).
    c.fill(0, false, false);
    c.fill(4, false, false);
    c.lookup(0, false); // touch 0: now 4 is LRU
    const Cache::Eviction ev = c.fill(8, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 4u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(8));
    EXPECT_FALSE(c.contains(4));
}

TEST(Cache, FifoIgnoresTouches)
{
    Cache c(tinyConfig(ReplPolicy::FIFO));
    c.fill(0, false, false);
    c.fill(4, false, false);
    c.lookup(0, false); // FIFO does not care
    const Cache::Eviction ev = c.fill(8, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u); // oldest insertion evicted
}

TEST(Cache, EvictionReportsDirtyVictim)
{
    Cache c(tinyConfig());
    c.fill(0, true, false); // dirty
    c.fill(4, false, false);
    const Cache::Eviction ev = c.fill(8, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidWaysPreferredOverEviction)
{
    Cache c(tinyConfig());
    c.fill(0, false, false);
    const Cache::Eviction ev = c.fill(4, false, false);
    EXPECT_FALSE(ev.valid); // second way was free
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache c(tinyConfig());
    // Lines 0..3 map to sets 0..3.
    for (uint64_t line = 0; line < 4; ++line)
        c.fill(line, false, false);
    for (uint64_t line = 0; line < 4; ++line)
        EXPECT_TRUE(c.contains(line));
    EXPECT_EQ(c.residentLines(), 4u);
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache c(tinyConfig());
    c.fill(3, true, false);
    c.fill(7, false, false);
    EXPECT_TRUE(c.invalidate(3));
    EXPECT_FALSE(c.invalidate(7));
    EXPECT_FALSE(c.invalidate(11)); // absent
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, FlushAllCollectsOnlyDirtyLines)
{
    Cache c(tinyConfig());
    c.fill(0, true, false);
    c.fill(1, false, false);
    c.fill(2, true, false);
    std::vector<uint64_t> dirty;
    c.flushAll(dirty);
    std::sort(dirty.begin(), dirty.end());
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], 0u);
    EXPECT_EQ(dirty[1], 2u);
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, PrefetchAccounting)
{
    Cache c(tinyConfig());
    c.fill(0, false, true); // prefetched line
    EXPECT_EQ(c.stats().prefetchFills, 1u);
    c.lookup(0, false);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    // Only the first demand touch counts as a prefetch hit.
    c.lookup(0, false);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    EXPECT_EQ(c.stats().readHits, 2u);
}

TEST(Cache, StatsDelta)
{
    Cache c(tinyConfig());
    c.lookup(0, false);
    c.fill(0, false, false);
    const CacheStats before = c.stats();
    c.lookup(0, false);
    c.lookup(1, true);
    const CacheStats delta = c.stats() - before;
    EXPECT_EQ(delta.readHits, 1u);
    EXPECT_EQ(delta.writeMisses, 1u);
    EXPECT_EQ(delta.readMisses, 0u);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // 10 sets: 10 x 2 x 64 = 1280 bytes.
    CacheConfig cfg{"NP2", 1280, 2, 64, ReplPolicy::LRU, 4, 64.0};
    EXPECT_EQ(cfg.numSets(), 10u);
    Cache c(cfg);
    // Lines i and i+10 share a set; fill 3 -> eviction in that set.
    c.fill(0, false, false);
    c.fill(10, false, false);
    const Cache::Eviction ev = c.fill(20, false, false);
    EXPECT_TRUE(ev.valid);
    // Other sets are untouched.
    c.fill(1, false, false);
    EXPECT_TRUE(c.contains(1));
}

class CapacitySweepTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CapacitySweepTest, WorkingSetLargerThanCacheAlwaysMisses)
{
    const uint32_t assoc = GetParam();
    CacheConfig cfg{"S", 64u * 16 * assoc, assoc, 64, ReplPolicy::LRU, 4,
                    64.0};
    Cache c(cfg);
    const uint64_t lines = 16ull * assoc; // exactly capacity
    // Two sequential passes over 2x capacity with LRU: every access
    // misses (the classic LRU streaming worst case).
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t line = 0; line < 2 * lines; ++line) {
            if (!c.lookup(line, false))
                c.fill(line, false, false);
        }
    }
    EXPECT_EQ(c.stats().readHits, 0u);
    EXPECT_EQ(c.stats().readMisses, 4 * lines);
}

TEST_P(CapacitySweepTest, WorkingSetWithinCacheHitsAfterWarmup)
{
    const uint32_t assoc = GetParam();
    CacheConfig cfg{"S", 64u * 16 * assoc, assoc, 64, ReplPolicy::LRU, 4,
                    64.0};
    Cache c(cfg);
    const uint64_t lines = 16ull * assoc;
    for (uint64_t line = 0; line < lines; ++line)
        c.fill(line, false, false);
    c.clearStats();
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t line = 0; line < lines; ++line)
            EXPECT_TRUE(c.lookup(line, false));
    EXPECT_EQ(c.stats().readMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CapacitySweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
