/** @file Unit tests for the two-level DTLB model. */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/tlb.hh"

namespace
{

using namespace rfl::sim;

TlbConfig
tinyTlb()
{
    TlbConfig cfg;
    cfg.l1Entries = 8;
    cfg.l1Assoc = 2;
    cfg.l2Entries = 32;
    cfg.l2Assoc = 4;
    return cfg;
}

TEST(Tlb, FirstTouchWalksThenHits)
{
    Tlb tlb(tinyTlb());
    const double first = tlb.translate(0x10000);
    EXPECT_DOUBLE_EQ(first, tlb.config().walkLatencyCycles);
    const double second = tlb.translate(0x10008); // same page
    EXPECT_DOUBLE_EQ(second, 0.0);
    EXPECT_EQ(tlb.stats().walks, 1u);
    EXPECT_EQ(tlb.stats().accesses, 2u);
}

TEST(Tlb, StlbHitCostsLessThanWalk)
{
    const TlbConfig cfg = tinyTlb();
    Tlb tlb(cfg);
    // Touch enough pages to evict page 0 from the 8-entry L1 but keep
    // it in the 32-entry L2 (all map across sets).
    tlb.translate(0);
    for (uint64_t p = 1; p <= 12; ++p)
        tlb.translate(p * cfg.pageBytes);
    const double lat = tlb.translate(0);
    EXPECT_DOUBLE_EQ(lat, cfg.l2LatencyCycles);
}

TEST(Tlb, CapacityThrashWalksEveryTime)
{
    const TlbConfig cfg = tinyTlb();
    Tlb tlb(cfg);
    // Cycle through 3x the STLB capacity twice: second pass still walks
    // (LRU streaming pattern).
    const uint64_t pages = 3 * cfg.l2Entries;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t p = 0; p < pages; ++p)
            tlb.translate(p * cfg.pageBytes);
    EXPECT_EQ(tlb.stats().walks, 2 * pages);
}

TEST(Tlb, FlushForgetsTranslations)
{
    Tlb tlb(tinyTlb());
    tlb.translate(0x5000);
    tlb.flush();
    const double lat = tlb.translate(0x5000);
    EXPECT_DOUBLE_EQ(lat, tlb.config().walkLatencyCycles);
}

TEST(Tlb, DisabledTlbIsFree)
{
    TlbConfig cfg = tinyTlb();
    cfg.enabled = false;
    Tlb tlb(cfg);
    EXPECT_DOUBLE_EQ(tlb.translate(0x123456), 0.0);
    EXPECT_EQ(tlb.stats().accesses, 0u);
}

TEST(TlbDeath, BadGeometryIsFatal)
{
    TlbConfig cfg;
    cfg.pageBytes = 5000;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "fatal");
    TlbConfig cfg2;
    cfg2.l1Entries = 7;
    cfg2.l1Assoc = 2;
    EXPECT_EXIT(cfg2.validate(), ::testing::ExitedWithCode(1), "fatal");
}

TEST(MachineTlb, PageStridedAccessesPayWalks)
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.l1Prefetcher.kind = PrefetcherKind::None;
    cfg.l2Prefetcher.kind = PrefetcherKind::None;
    Machine m(cfg);
    // Touch 8192 distinct pages: far beyond the 1536-entry STLB.
    const Machine::Snapshot before = m.snapshot();
    for (uint64_t p = 0; p < 8192; ++p)
        m.load(0, p * 4096, 8);
    const Machine::Snapshot delta = m.snapshot() - before;
    EXPECT_GT(delta.tlbs[0].walks, 8000u);

    // The same byte count touched densely costs far fewer walks.
    m.reset();
    const Machine::Snapshot b2 = m.snapshot();
    for (uint64_t i = 0; i < 8192; ++i)
        m.load(0, i * 64, 8);
    const Machine::Snapshot d2 = m.snapshot() - b2;
    EXPECT_LT(d2.tlbs[0].walks, 200u);
    // And runs measurably faster despite identical DRAM line counts.
    EXPECT_LT(m.regionCycles(d2), m.regionCycles(delta));
}

TEST(MachineTlb, TlbCanBeDisabledInConfig)
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.tlb.enabled = false;
    Machine m(cfg);
    for (uint64_t p = 0; p < 100; ++p)
        m.load(0, p * 4096, 8);
    EXPECT_EQ(m.tlb(0).stats().accesses, 0u);
}

} // namespace
