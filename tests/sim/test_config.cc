/** @file Unit tests for configuration validation and presets. */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/core.hh"

namespace
{

using namespace rfl::sim;

TEST(Config, DefaultPlatformIsValid)
{
    const MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.validate(); // must not exit
    EXPECT_EQ(cfg.totalCores(), 8);
    EXPECT_TRUE(cfg.core.hasFma);
    EXPECT_EQ(cfg.core.maxVectorDoubles, 4);
}

TEST(Config, PresetsAreValid)
{
    MachineConfig::smallTestMachine().validate();
    MachineConfig::scalarMachine().validate();
}

TEST(Config, PeakFlopsFormula)
{
    const CoreConfig core = MachineConfig::defaultPlatform().core;
    // 2 pipes * 4 lanes * 2 (FMA) = 16 flops/cycle.
    EXPECT_DOUBLE_EQ(core.peakFlopsPerCycle(4), 16.0);
    EXPECT_DOUBLE_EQ(core.peakFlopsPerCycle(1), 4.0);
    EXPECT_DOUBLE_EQ(core.peakFlopsPerSec(4), 16.0 * 2.5e9);
}

TEST(Config, DramUnitConversions)
{
    const MachineConfig cfg = MachineConfig::defaultPlatform();
    EXPECT_NEAR(cfg.socketDramBytesPerCycle(), 38.4 / 2.5, 1e-12);
    EXPECT_NEAR(cfg.perCoreDramBytesPerCycle(), 14.0 / 2.5, 1e-12);
    EXPECT_NEAR(cfg.dramLatencyCycles(), 80.0 * 2.5, 1e-12);
}

TEST(Config, CacheGeometry)
{
    const MachineConfig cfg = MachineConfig::defaultPlatform();
    EXPECT_EQ(cfg.l1.numSets(), 32u * 1024 / (64 * 8));
    EXPECT_EQ(cfg.l3.numSets(),
              10u * 1024 * 1024 / (64 * 16)); // non-pow2 is fine
}

TEST(ConfigDeath, BadGeometryIsFatal)
{
    CacheConfig c{"X", 1000, 3, 64, ReplPolicy::LRU, 1, 1.0};
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "fatal");

    CacheConfig line{"X", 1024, 2, 48, ReplPolicy::LRU, 1, 1.0};
    EXPECT_EXIT(line.validate(), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(ConfigDeath, PerCoreBandwidthAboveSocketIsFatal)
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.perCoreDramGBs = cfg.socketDramGBs + 1.0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "fatal");
}

TEST(ConfigDeath, MixedLineSizesAreFatal)
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.l2.lineBytes = 128;
    cfg.l2.sizeBytes = 256 * 1024;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "line size");
}

TEST(VecWidth, LanesRoundTrip)
{
    EXPECT_EQ(vecLanes(VecWidth::Scalar), 1);
    EXPECT_EQ(vecLanes(VecWidth::W2), 2);
    EXPECT_EQ(vecLanes(VecWidth::W4), 4);
    EXPECT_EQ(vecLanes(VecWidth::W8), 8);
    for (int lanes : {1, 2, 4, 8})
        EXPECT_EQ(vecLanes(widthForLanes(lanes)), lanes);
}

TEST(VecWidthDeath, BadLaneCountPanics)
{
    EXPECT_DEATH(widthForLanes(3), "panic");
}

TEST(Config, Names)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "LRU");
    EXPECT_STREQ(prefetcherKindName(PrefetcherKind::Stream), "stream");
    EXPECT_STREQ(vecWidthName(VecWidth::W4), "256b-packed");
}

} // namespace
