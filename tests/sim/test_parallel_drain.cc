/**
 * @file
 * Deterministic-merge invariants of Machine::drainParallel.
 *
 * The parallel drain defers every shared-level (L3/IMC/DRAM) effect
 * into per-core logs and replays them in core order at the end of the
 * session (DESIGN.md §13). These tests attack the merge directly with
 * hand-built per-core streams — not kernels — so the adversarial cases
 * are explicit:
 *
 *   - two cores emitting interleaved streams that share L3 lines (the
 *     replay order decides who misses and who hits);
 *   - different batch limits per core, so flush boundaries (= deferred
 *     epochs) split same-line streaks at unrelated points;
 *   - the interval sampler armed across the session, including a period
 *     change between two sessions, so sampling epochs replay mid-span;
 *   - phase trajectories built through the full measurement stack.
 *
 * Everything must be bit-identical to running the same per-core streams
 * sequentially in core order, for every host thread count.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/phase.hh"
#include "kernels/engine.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::sim;

void
expectEqual(const Machine::Snapshot &ref, const Machine::Snapshot &got,
            const std::string &ctx)
{
    ASSERT_EQ(ref.cores.size(), got.cores.size()) << ctx;
    for (size_t c = 0; c < ref.cores.size(); ++c) {
        const CoreCounters &a = ref.cores[c];
        const CoreCounters &b = got.cores[c];
        const std::string at = ctx + " core" + std::to_string(c);
        for (size_t w = 0; w < 4; ++w)
            EXPECT_EQ(a.fpRetired[w], b.fpRetired[w])
                << at << " fpRetired[" << w << "]";
        EXPECT_EQ(a.fpUops, b.fpUops) << at << " fpUops";
        EXPECT_EQ(a.loadUops, b.loadUops) << at << " loadUops";
        EXPECT_EQ(a.storeUops, b.storeUops) << at << " storeUops";
        EXPECT_EQ(a.otherUops, b.otherUops) << at << " otherUops";
        EXPECT_EQ(a.l2FillBytes, b.l2FillBytes) << at << " l2FillBytes";
        EXPECT_EQ(a.l3FillBytes, b.l3FillBytes) << at << " l3FillBytes";
        EXPECT_EQ(a.dramFillBytes, b.dramFillBytes)
            << at << " dramFillBytes";
        EXPECT_EQ(a.ntStoreBytes, b.ntStoreBytes) << at << " ntStoreBytes";
        EXPECT_EQ(a.dramWritebackBytes, b.dramWritebackBytes)
            << at << " dramWritebackBytes";
        EXPECT_EQ(a.latencyCycles, b.latencyCycles)
            << at << " latencyCycles";
    }
    auto expect_cache = [&](const std::vector<CacheStats> &ra,
                            const std::vector<CacheStats> &rb,
                            const char *level) {
        ASSERT_EQ(ra.size(), rb.size()) << ctx << " " << level;
        for (size_t i = 0; i < ra.size(); ++i) {
            const CacheStats &a = ra[i];
            const CacheStats &b = rb[i];
            const std::string at =
                ctx + " " + level + "[" + std::to_string(i) + "]";
            EXPECT_EQ(a.readHits, b.readHits) << at << " readHits";
            EXPECT_EQ(a.readMisses, b.readMisses) << at << " readMisses";
            EXPECT_EQ(a.writeHits, b.writeHits) << at << " writeHits";
            EXPECT_EQ(a.writeMisses, b.writeMisses) << at << " writeMisses";
            EXPECT_EQ(a.writebacks, b.writebacks) << at << " writebacks";
            EXPECT_EQ(a.prefetchFills, b.prefetchFills)
                << at << " prefetchFills";
            EXPECT_EQ(a.prefetchHits, b.prefetchHits)
                << at << " prefetchHits";
        }
    };
    expect_cache(ref.l1, got.l1, "l1");
    expect_cache(ref.l2, got.l2, "l2");
    expect_cache(ref.l3, got.l3, "l3");
    ASSERT_EQ(ref.imcs.size(), got.imcs.size()) << ctx;
    for (size_t i = 0; i < ref.imcs.size(); ++i) {
        const std::string at = ctx + " imc[" + std::to_string(i) + "]";
        EXPECT_EQ(ref.imcs[i].casReads, got.imcs[i].casReads) << at;
        EXPECT_EQ(ref.imcs[i].casWrites, got.imcs[i].casWrites) << at;
        EXPECT_EQ(ref.imcs[i].prefetchReads, got.imcs[i].prefetchReads)
            << at;
        EXPECT_EQ(ref.imcs[i].ntWrites, got.imcs[i].ntWrites) << at;
    }
    ASSERT_EQ(ref.tlbs.size(), got.tlbs.size()) << ctx;
    for (size_t i = 0; i < ref.tlbs.size(); ++i) {
        const std::string at = ctx + " tlb[" + std::to_string(i) + "]";
        EXPECT_EQ(ref.tlbs[i].accesses, got.tlbs[i].accesses) << at;
        EXPECT_EQ(ref.tlbs[i].l1Misses, got.tlbs[i].l1Misses) << at;
        EXPECT_EQ(ref.tlbs[i].walks, got.tlbs[i].walks) << at;
    }
}

/**
 * Emit one core's hand-built stream: same-line streaks over a private
 * region, periodic stores (dirty lines -> writebacks), NT stores, page
 * changes every 4 KiB, accesses into a region BOTH cores touch (the
 * shared-state battleground the merge replay has to order), and FP/uop
 * retirements mixed in.
 */
void
emitStream(kernels::SimEngine &e, int core)
{
    const uint64_t priv = (1ull << 32) + static_cast<uint64_t>(core) *
                                             (8ull << 20);
    const uint64_t shared = (1ull << 32) + (64ull << 20);
    for (uint64_t i = 0; i < 6000; ++i) {
        e.emitLoad(priv + 8 * i, 8); // 8-access streak per 64B line
        if (i % 16 == 5)
            e.emitStore(priv + 8 * i, 8);
        if (i % 32 == 11)
            e.emitStoreNT(priv + (1ull << 20) + 8 * i, 8);
        if (i % 64 == 23) {
            e.emitLoad(shared + 8 * (i % 512), 8);
            e.emitStore(shared + 8 * (i % 512), 8);
        }
        if (i % 8 == 0)
            e.emitFp(sim::VecWidth::W4, true, 2);
        e.emitOther(1);
    }
}

/**
 * Drive both per-core streams, sequentially (threads == 0: classic
 * engines, core order, no defer) or through drainParallel on the given
 * host thread count. Batch limits 7 and 13 put every flush boundary —
 * and therefore every deferred epoch — mid-streak, at different points
 * per core.
 */
Machine::Snapshot
driveTwoCores(Machine &machine, int threads)
{
    const Machine::Snapshot before = machine.snapshot();
    if (threads == 0) {
        for (int core = 0; core < 2; ++core) {
            kernels::SimEngine e(machine, core, 4, true);
            e.setBatchLimit(core == 0 ? 7 : 13);
            emitStream(e, core);
        }
    } else {
        std::vector<std::unique_ptr<kernels::SimEngine>> engines;
        for (int core = 0; core < 2; ++core) {
            engines.push_back(std::make_unique<kernels::SimEngine>(
                machine, core, 4, true));
            engines.back()->setBatchLimit(core == 0 ? 7 : 13);
        }
        std::vector<std::function<void()>> work;
        for (int core = 0; core < 2; ++core) {
            kernels::SimEngine &e = *engines[static_cast<size_t>(core)];
            work.push_back([&e, core] {
                emitStream(e, core);
                e.flush();
            });
        }
        machine.drainParallel(work, threads);
    }
    machine.flushAllCaches();
    return machine.snapshot() - before;
}

TEST(ParallelDrainMerge, InterleavedStreamsAcrossThreadCounts)
{
    Machine ref(MachineConfig::defaultPlatform());
    ref.setFastPath(true);
    const Machine::Snapshot expected = driveTwoCores(ref, 0);

    for (int threads : {1, 2, 8}) {
        Machine m(MachineConfig::defaultPlatform());
        m.setFastPath(true);
        expectEqual(expected, driveTwoCores(m, threads),
                    "two-core merge t=" + std::to_string(threads));
    }
}

/** Same streams with the interval sampler armed: the sampler replays at
 *  merge time, so the recorded sample trajectory — not just the totals —
 *  matches the sequential run sample-for-sample, and a period change
 *  between two sessions lands at the same stream position. The period
 *  977 is prime, so sample boundaries fall mid-streak and mid-batch. */
TEST(ParallelDrainMerge, SamplingTrajectoryAcrossThreadCounts)
{
    auto run = [](int threads) {
        Machine m(MachineConfig::defaultPlatform());
        m.setFastPath(true);
        m.setSamplePeriod(977);
        driveTwoCores(m, threads);
        m.setSamplePeriod(313); // mid-span re-arm between sessions
        driveTwoCores(m, threads);
        m.setSamplePeriod(0);
        return std::make_pair(m.snapshot(), m.samples());
    };

    const auto [ref_end, ref_samples] = run(0);
    ASSERT_GT(ref_samples.size(), 4u)
        << "sampler never fired; the invariant would be vacuous";

    for (int threads : {1, 2, 8}) {
        const auto [end, samples] = run(threads);
        const std::string ctx =
            "sampled merge t=" + std::to_string(threads);
        expectEqual(ref_end, end, ctx + " totals");
        ASSERT_EQ(ref_samples.size(), samples.size()) << ctx;
        for (size_t i = 0; i < ref_samples.size(); ++i)
            expectEqual(ref_samples[i], samples[i],
                        ctx + " sample[" + std::to_string(i) + "]");
    }
}

/** End-to-end: phase trajectories built through the measurement stack
 *  are identical for every drain thread count. */
TEST(ParallelDrainMerge, PhaseTrajectoriesIdenticalAcrossThreadCounts)
{
    auto sample = [](int drain_threads) {
        Machine machine(MachineConfig::defaultPlatform());
        roofline::MeasureOptions opts;
        opts.cores = {0, 1, 2, 3};
        opts.drainThreads = drain_threads;
        return analysis::samplePhasesSpec(machine, "daxpy:n=8192", opts,
                                          512);
    };

    const analysis::PhaseTrajectory ref = sample(1);
    ASSERT_GT(ref.points.size(), 1u);

    for (int threads : {2, 8}) {
        const analysis::PhaseTrajectory got = sample(threads);
        const std::string ctx =
            "trajectory t=" + std::to_string(threads);
        EXPECT_EQ(ref.totalFlops, got.totalFlops) << ctx;
        EXPECT_EQ(ref.totalTrafficBytes, got.totalTrafficBytes) << ctx;
        EXPECT_EQ(ref.totalSeconds, got.totalSeconds) << ctx;
        ASSERT_EQ(ref.points.size(), got.points.size()) << ctx;
        for (size_t i = 0; i < ref.points.size(); ++i) {
            const std::string at =
                ctx + " point[" + std::to_string(i) + "]";
            EXPECT_EQ(ref.points[i].flops, got.points[i].flops) << at;
            EXPECT_EQ(ref.points[i].trafficBytes,
                      got.points[i].trafficBytes)
                << at;
            EXPECT_EQ(ref.points[i].seconds, got.points[i].seconds) << at;
        }
    }
}

} // namespace
