/**
 * @file
 * Randomized property tests of the simulated machine: invariants that
 * must hold for ANY access sequence, checked over seeded random walks.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "support/rng.hh"

namespace
{

using namespace rfl;
using namespace rfl::sim;

MachineConfig
quietConfig()
{
    MachineConfig cfg = MachineConfig::smallTestMachine();
    cfg.l1Prefetcher.kind = PrefetcherKind::None;
    cfg.l2Prefetcher.kind = PrefetcherKind::None;
    return cfg;
}

class RandomWalk : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomWalk, CacheStatsAreConsistent)
{
    Machine m(quietConfig());
    Rng rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        const uint64_t addr = rng.nextBounded(1 << 20);
        if (rng.nextBounded(3) == 0)
            m.store(0, addr, 8);
        else
            m.load(0, addr, 8);
    }
    const CacheStats &l1 = m.l1(0).stats();
    EXPECT_EQ(l1.hits() + l1.misses(), l1.accesses());
    // Every L2 access is an L1 miss.
    EXPECT_EQ(m.l2(0).stats().accesses(), l1.misses());
    // Every L3 access is an L2 miss.
    EXPECT_EQ(m.l3(0).stats().accesses(), m.l2(0).stats().misses());
}

TEST_P(RandomWalk, ResidencyNeverExceedsCapacity)
{
    Machine m(quietConfig());
    Rng rng(GetParam() + 1);
    for (int i = 0; i < 20000; ++i)
        m.load(0, rng.nextBounded(1 << 22), 8);
    const MachineConfig &cfg = m.config();
    EXPECT_LE(m.l1(0).residentLines(), cfg.l1.sizeBytes / 64);
    EXPECT_LE(m.l2(0).residentLines(), cfg.l2.sizeBytes / 64);
    EXPECT_LE(m.l3(0).residentLines(), cfg.l3.sizeBytes / 64);
}

TEST_P(RandomWalk, ImcReadsEqualDistinctMissedLines)
{
    // Prefetch off, loads only, working set far beyond every cache:
    // if the walk is a permutation of distinct lines, IMC reads ==
    // number of distinct lines (each fetched exactly once while never
    // re-referenced).
    Machine m(quietConfig());
    Rng rng(GetParam() + 2);
    std::set<uint64_t> lines;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t line = rng.nextBounded(1 << 24);
        if (lines.count(line))
            continue;
        lines.insert(line);
        m.load(0, line * 64, 8);
    }
    // Every line beyond cache capacity... a line may still be cached
    // when re-inserted; but since each line is touched ONCE, every
    // touch either misses everywhere (IMC read) — always, as it was
    // never fetched before.
    EXPECT_EQ(m.imc(0).stats().casReads, lines.size());
}

TEST_P(RandomWalk, WritebacksBoundedByStores)
{
    // Every DRAM write is caused by at least one store that dirtied the
    // line since its previous writeback, so casWrites <= total stores.
    // (A line evicted and re-dirtied can write back several times, so
    // the count CAN exceed the number of distinct dirtied lines.)
    Machine m(quietConfig());
    Rng rng(GetParam() + 3);
    uint64_t stores = 0;
    std::set<uint64_t> dirtied;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t line = rng.nextBounded(1 << 16);
        if (rng.nextBounded(2) == 0) {
            m.store(0, line * 64, 8);
            dirtied.insert(line);
            ++stores;
        } else {
            m.load(0, line * 64, 8);
        }
    }
    m.flushAllCaches();
    EXPECT_LE(m.imc(0).stats().casWrites, stores);
    EXPECT_GE(m.imc(0).stats().casWrites, dirtied.size() / 2);
    EXPECT_GT(m.imc(0).stats().casWrites, 0u);
}

TEST_P(RandomWalk, RegionTimingIsAdditive)
{
    // T(region A) + T(region B) >= T(A u B measured as one region) is
    // NOT generally true for max-based models; what must hold is
    // monotonicity: extending a region never reduces its cycles.
    Machine m(quietConfig());
    Rng rng(GetParam() + 4);
    const Machine::Snapshot s0 = m.snapshot();
    for (int i = 0; i < 1000; ++i)
        m.load(0, rng.nextBounded(1 << 20), 8);
    const double t1 = m.regionCycles(m.snapshot() - s0);
    for (int i = 0; i < 1000; ++i)
        m.load(0, rng.nextBounded(1 << 20), 8);
    const double t2 = m.regionCycles(m.snapshot() - s0);
    EXPECT_GE(t2, t1);
    EXPECT_GT(t1, 0.0);
}

TEST_P(RandomWalk, DeterministicReplay)
{
    // Two machines fed the identical sequence end in identical state.
    Machine a(quietConfig()), b(quietConfig());
    Rng rng1(GetParam() + 5), rng2(GetParam() + 5);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t a1 = rng1.nextBounded(1 << 20);
        const uint64_t a2 = rng2.nextBounded(1 << 20);
        ASSERT_EQ(a1, a2);
        a.load(0, a1, 8);
        b.load(0, a2, 8);
    }
    std::ostringstream sa, sb;
    a.printStats(sa);
    b.printStats(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalk,
                         ::testing::Values(1ull, 42ull, 1337ull,
                                           0xdeadbeefull));

TEST(MachineStats, PrintStatsContainsAllSections)
{
    Machine m(MachineConfig::defaultPlatform());
    m.load(0, 0x1000, 8);
    m.retireFp(0, VecWidth::W4, true, 3);
    std::ostringstream os;
    m.printStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("core0.fp_256b 6"), std::string::npos);
    EXPECT_NE(s.find("core0.flops 24"), std::string::npos);
    EXPECT_NE(s.find("core0.l1d.read_misses"), std::string::npos);
    EXPECT_NE(s.find("core0.dtlb.walks"), std::string::npos);
    EXPECT_NE(s.find("socket0.imc.cas_reads"), std::string::npos);
    EXPECT_NE(s.find("socket1.l3.read_hits"), std::string::npos);
}

} // namespace
