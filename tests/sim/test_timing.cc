/** @file Tests of the analytic timing model (regionCycles). */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace
{

using namespace rfl::sim;

MachineConfig
quietConfig()
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.l1Prefetcher.kind = PrefetcherKind::None;
    cfg.l2Prefetcher.kind = PrefetcherKind::None;
    return cfg;
}

TEST(Timing, PureComputeIsFpBound)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    // 1000 AVX FMAs on one core: 1000 uops / 2 pipes = 500 cycles;
    // issue = 1000/4 = 250 is lower.
    m.retireFp(0, VecWidth::W4, true, 1000);
    const double cycles = m.regionCycles(m.snapshot() - before);
    EXPECT_NEAR(cycles, 500.0, 1e-9);
}

TEST(Timing, PeakFlopsMatchesConfig)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    m.retireFp(0, VecWidth::W4, true, 1000); // 8000 flops
    const Machine::Snapshot delta = m.snapshot() - before;
    const double flops_per_cycle =
        static_cast<double>(delta.totalFlops()) / m.regionCycles(delta);
    EXPECT_NEAR(flops_per_cycle, m.config().core.peakFlopsPerCycle(4),
                1e-9);
}

TEST(Timing, IssueWidthBindsUopHeavyCode)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    m.retireOther(0, 4000); // pure integer work: 4000/4 = 1000 cycles
    EXPECT_NEAR(m.regionCycles(m.snapshot() - before), 1000.0, 1e-9);
}

TEST(Timing, StorePortBindsStoreStream)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    // 100 stores to one resident line: no memory traffic beyond first.
    m.store(0, 0x1000, 8);
    for (int i = 0; i < 99; ++i)
        m.store(0, 0x1000, 8);
    const Machine::Snapshot delta = m.snapshot() - before;
    // 100 store uops / 1 port = 100 cycles is the binding term (the
    // single line fill adds latency/bandwidth below that).
    EXPECT_GE(m.regionCycles(delta), 100.0);
    EXPECT_LT(m.regionCycles(delta), 200.0);
}

TEST(Timing, DramBandwidthBindsStreamingReads)
{
    // With prefetchers ON, demand latency is hidden and the stream runs
    // close to the bandwidth bound; with them OFF every line exposes
    // DRAM latency (divided by the MLP) and the same stream is slower.
    const uint64_t lines = 100000;
    auto run = [&](bool prefetch) {
        Machine m(prefetch ? MachineConfig::defaultPlatform()
                           : quietConfig());
        const Machine::Snapshot before = m.snapshot();
        for (uint64_t i = 0; i < lines; ++i)
            m.load(0, 0x1000000 + i * 64, 64);
        const Machine::Snapshot delta = m.snapshot() - before;
        return m.regionCycles(delta);
    };
    const double bytes = static_cast<double>(lines * 64);
    const MachineConfig cfg = MachineConfig::defaultPlatform();
    const double min_cycles = bytes / cfg.perCoreDramBytesPerCycle();

    const double with_pf = run(true);
    EXPECT_GE(with_pf, min_cycles * 0.99);
    EXPECT_LT(with_pf, min_cycles * 1.4);

    const double without_pf = run(false);
    EXPECT_GT(without_pf, with_pf);
}

TEST(Timing, DependentAccessesExposeFullLatency)
{
    Machine m(quietConfig());
    // Two identical pointer-chase-like miss sequences; one measured with
    // MLP, one with dependent accesses (MLP = 1).
    auto run = [&](bool dependent) {
        m.reset();
        m.setDependentAccesses(dependent);
        const Machine::Snapshot before = m.snapshot();
        for (uint64_t i = 0; i < 1000; ++i)
            m.load(0, 0x1000000 + i * 4096, 8); // one miss per page
        const double cycles = m.regionCycles(m.snapshot() - before);
        m.setDependentAccesses(false);
        return cycles;
    };
    const double overlapped = run(false);
    const double dependent = run(true);
    EXPECT_GT(dependent, overlapped * 3.0);
}

TEST(Timing, SocketBandwidthCapsMultiCoreStreams)
{
    MachineConfig cfg = quietConfig();
    Machine m(cfg);
    // All four cores of socket 0 stream disjoint gigantic ranges.
    const Machine::Snapshot before = m.snapshot();
    const uint64_t lines_per_core = 50000;
    for (int c = 0; c < cfg.coresPerSocket; ++c) {
        const uint64_t base = 0x10000000ull * (c + 1);
        for (uint64_t i = 0; i < lines_per_core; ++i)
            m.load(c, base + i * 64, 64);
    }
    const Machine::Snapshot delta = m.snapshot() - before;
    const double cycles = m.regionCycles(delta);
    const double total_bytes =
        static_cast<double>(4 * lines_per_core * 64);
    const double socket_min =
        total_bytes / m.config().socketDramBytesPerCycle();
    const double per_core_min = total_bytes / 4.0 /
                                m.config().perCoreDramBytesPerCycle();
    // 4 cores x 14 GB/s demand = 56 GB/s > 38.4 GB/s socket: the socket
    // term must bind (it exceeds the per-core term).
    EXPECT_GT(socket_min, per_core_min);
    EXPECT_GE(cycles, socket_min);
}

TEST(Timing, TwoSocketsDoubleTheBandwidth)
{
    MachineConfig cfg = quietConfig();
    Machine m(cfg);
    m.setMemPolicy(MemPolicy::LocalToAccessor);
    const uint64_t lines_per_core = 20000;

    auto stream = [&](const std::vector<int> &cores) {
        m.reset();
        const Machine::Snapshot before = m.snapshot();
        for (int c : cores) {
            const uint64_t base = 0x10000000ull * (c + 1);
            for (uint64_t i = 0; i < lines_per_core; ++i)
                m.load(c, base + i * 64, 64);
        }
        const Machine::Snapshot delta = m.snapshot() - before;
        const double bytes = static_cast<double>(
            delta.totalImc().totalBytes(64));
        return bytes / m.regionSeconds(delta);
    };

    const double one_socket = stream({0, 1, 2, 3});
    const double two_sockets = stream({0, 1, 2, 3, 4, 5, 6, 7});
    EXPECT_GT(two_sockets, one_socket * 1.6);
}

TEST(Timing, RemoteAccessesAreSlower)
{
    MachineConfig cfg = quietConfig();
    Machine m(cfg);
    const uint64_t lines = 20000;

    auto stream = [&](MemPolicy policy, int core) {
        m.reset();
        m.setMemPolicy(policy);
        const Machine::Snapshot before = m.snapshot();
        for (uint64_t i = 0; i < lines; ++i)
            m.load(core, 0x40000000ull + i * 64, 64);
        return m.regionSeconds(m.snapshot() - before);
    };

    // Core 4 is on socket 1; Socket0 policy makes all its traffic remote.
    const double local = stream(MemPolicy::LocalToAccessor, 4);
    const double remote = stream(MemPolicy::Socket0, 4);
    EXPECT_GT(remote, local * 1.2);
}

TEST(Timing, MaxOverCoresNotSum)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    // Two cores do identical independent compute: runtime is one core's
    // time, not twice that.
    m.retireFp(0, VecWidth::W4, true, 1000);
    m.retireFp(1, VecWidth::W4, true, 1000);
    const double cycles = m.regionCycles(m.snapshot() - before);
    EXPECT_NEAR(cycles, 500.0, 1e-9);
}

TEST(Timing, EmptyDeltaIsZero)
{
    Machine m(quietConfig());
    const Machine::Snapshot s = m.snapshot();
    EXPECT_DOUBLE_EQ(m.regionCycles(s - s), 0.0);
}

} // namespace
