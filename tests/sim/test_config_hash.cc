/**
 * @file
 * Canonical MachineConfig equality/hashing: the contract the campaign
 * ResultCache relies on. A config must survive a config_io round-trip
 * with its identity (operator== and stableHash) intact, and any field
 * change must move the hash.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/config_io.hh"

namespace
{

using namespace rfl::sim;

TEST(ConfigHash, EqualConfigsHashEqual)
{
    const MachineConfig a = MachineConfig::defaultPlatform();
    const MachineConfig b = MachineConfig::defaultPlatform();
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.stableHash(), b.stableHash());
}

TEST(ConfigHash, PresetsHashDistinctly)
{
    const uint64_t def = MachineConfig::defaultPlatform().stableHash();
    const uint64_t small = MachineConfig::smallTestMachine().stableHash();
    const uint64_t scalar = MachineConfig::scalarMachine().stableHash();
    EXPECT_NE(def, small);
    EXPECT_NE(def, scalar);
    EXPECT_NE(small, scalar);
}

TEST(ConfigHash, EveryFieldClassMovesTheHash)
{
    const MachineConfig base = MachineConfig::defaultPlatform();

    MachineConfig m = base;
    m.name = "other";
    EXPECT_NE(m.stableHash(), base.stableHash());

    m = base;
    m.core.freqGHz = 2.6;
    EXPECT_NE(m.stableHash(), base.stableHash());

    m = base;
    m.l2.assoc = 16;
    EXPECT_NE(m.stableHash(), base.stableHash());

    m = base;
    m.l2Prefetcher.degree += 1;
    EXPECT_NE(m.stableHash(), base.stableHash());

    m = base;
    m.remoteNumaBandwidthFactor = 0.5;
    EXPECT_NE(m.stableHash(), base.stableHash());

    m = base;
    m.tlb.walkLatencyCycles = 40.0;
    EXPECT_NE(m.stableHash(), base.stableHash());
}

TEST(ConfigHash, SerializationRoundTripPreservesIdentity)
{
    for (const MachineConfig &cfg :
         {MachineConfig::defaultPlatform(),
          MachineConfig::smallTestMachine(),
          MachineConfig::scalarMachine()}) {
        const MachineConfig back =
            parseMachineConfig(formatMachineConfig(cfg));
        EXPECT_TRUE(back == cfg) << "round-trip changed " << cfg.name;
        EXPECT_EQ(back.stableHash(), cfg.stableHash());
    }
}

TEST(ConfigHash, RoundTripKeepsNonDefaultDetails)
{
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.name = "tweaked";
    cfg.l1.name = "L1-custom"; // level names are part of the identity
    cfg.core.freqGHz = 3.141592653589793;
    cfg.l3.repl = ReplPolicy::Random;
    cfg.l1Prefetcher.kind = PrefetcherKind::None;
    cfg.l2Prefetcher.distance = 24;
    cfg.remoteNumaLatencyFactor = 1.75;
    cfg.tlb.l1Assoc = 8;
    cfg.tlb.l2LatencyCycles = 9.5;

    const MachineConfig back = parseMachineConfig(formatMachineConfig(cfg));
    EXPECT_TRUE(back == cfg);
    EXPECT_EQ(back.stableHash(), cfg.stableHash());

    // And the tweaks really are part of the identity.
    EXPECT_NE(cfg.stableHash(),
              MachineConfig::defaultPlatform().stableHash());
}

} // namespace
