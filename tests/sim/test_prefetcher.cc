/** @file Unit tests for the prefetcher models. */

#include <gtest/gtest.h>

#include "sim/prefetcher.hh"

namespace
{

using namespace rfl::sim;

TEST(NonePrefetcher, NeverIssues)
{
    NonePrefetcher pf;
    PfList out;
    for (uint64_t i = 0; i < 100; ++i)
        pf.observe(i, true, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().issued, 0u);
    EXPECT_EQ(pf.stats().observed, 100u);
}

TEST(NextLine, FetchesPairLineOnMiss)
{
    NextLinePrefetcher pf;
    PfList out;
    pf.observe(10, true, out); // even line -> pair is 11
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 11u);
    out.clear();
    pf.observe(11, true, out); // odd line -> pair is 10
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 10u);
}

TEST(NextLine, SilentOnHits)
{
    NextLinePrefetcher pf;
    PfList out;
    pf.observe(10, false, out);
    EXPECT_TRUE(out.empty());
}

PrefetcherConfig
streamCfg(int streams = 4, int degree = 2, int distance = 8)
{
    return {PrefetcherKind::Stream, streams, degree, distance};
}

TEST(Stream, TrainsAfterTwoSequentialAccesses)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(100, true, out); // allocate
    EXPECT_TRUE(out.empty());
    pf.observe(101, true, out); // train
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.trainedStreams(), 1);
    pf.observe(102, true, out); // trained: issues degree=2 at distance 8
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 110u);
    EXPECT_EQ(out[1], 111u);
}

TEST(Stream, DescendingStream)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(200, true, out);
    pf.observe(199, true, out);
    pf.observe(198, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 190u);
    EXPECT_EQ(out[1], 189u);
}

TEST(Stream, ToleratesSkippedLines)
{
    // Lower-level prefetchers hide lines; the streamer must keep
    // tracking across jumps up to its window.
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(100, true, out);
    pf.observe(102, true, out); // jump of 2: still the same stream
    EXPECT_EQ(pf.trainedStreams(), 1);
    pf.observe(104, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 112u);
}

TEST(Stream, RandomAccessesDoNotTrain)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(10, true, out);
    pf.observe(5000, true, out);
    pf.observe(90000, true, out);
    pf.observe(12345678, true, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.trainedStreams(), 0);
}

TEST(Stream, RepeatTouchKeepsStreamAlive)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(50, true, out);
    pf.observe(50, true, out); // same line: no new stream
    pf.observe(51, true, out);
    EXPECT_EQ(pf.trainedStreams(), 1);
    EXPECT_EQ(pf.stats().streamsAllocated, 1u);
}

TEST(Stream, TracksMultipleConcurrentStreams)
{
    StreamPrefetcher pf(streamCfg(4));
    PfList out;
    // Interleave three streams far apart.
    for (uint64_t i = 0; i < 8; ++i) {
        pf.observe(1000 + i, true, out);
        pf.observe(50000 + i, true, out);
        pf.observe(900000 + i, true, out);
    }
    EXPECT_EQ(pf.trainedStreams(), 3);
    EXPECT_GT(out.size(), 0u);
}

TEST(Stream, LruStreamReplacement)
{
    StreamPrefetcher pf(streamCfg(2)); // only two stream slots
    PfList out;
    pf.observe(1000, true, out);
    pf.observe(2000, true, out);
    pf.observe(3000, true, out); // evicts the 1000 stream (LRU)
    EXPECT_EQ(pf.stats().streamsAllocated, 3u);
    // Continuing the 2000 stream still works...
    pf.observe(2001, true, out);
    EXPECT_EQ(pf.trainedStreams(), 1);
    // ...but continuing 1000 must re-allocate.
    pf.observe(1001, true, out);
    EXPECT_EQ(pf.stats().streamsAllocated, 4u);
}

TEST(Stream, DirectionFlipRetrains)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(100, true, out);
    pf.observe(101, true, out);
    pf.observe(102, true, out);
    out.clear();
    pf.observe(101, true, out); // flip down: retrain, no prefetch
    EXPECT_TRUE(out.empty());
    pf.observe(100, true, out); // confirmed descending
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 92u);
}

TEST(Stream, ResetForgetsEverything)
{
    StreamPrefetcher pf(streamCfg());
    PfList out;
    pf.observe(10, true, out);
    pf.observe(11, true, out);
    pf.reset();
    EXPECT_EQ(pf.trainedStreams(), 0);
    pf.observe(12, true, out);
    EXPECT_TRUE(out.empty()); // had to re-allocate
}

TEST(Factory, CreatesConfiguredKind)
{
    EXPECT_EQ(Prefetcher::create({PrefetcherKind::None, 1, 1, 1})->kind(),
              PrefetcherKind::None);
    EXPECT_EQ(
        Prefetcher::create({PrefetcherKind::NextLine, 1, 1, 1})->kind(),
        PrefetcherKind::NextLine);
    EXPECT_EQ(
        Prefetcher::create({PrefetcherKind::Stream, 8, 2, 4})->kind(),
        PrefetcherKind::Stream);
}

class StreamDegreeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamDegreeTest, IssuesConfiguredDegree)
{
    const int degree = GetParam();
    StreamPrefetcher pf({PrefetcherKind::Stream, 4, degree, 16});
    PfList out;
    pf.observe(100, true, out);
    pf.observe(101, true, out);
    pf.observe(102, true, out);
    EXPECT_EQ(out.size(), static_cast<size_t>(degree));
    for (int i = 0; i < degree; ++i)
        EXPECT_EQ(out[static_cast<size_t>(i)],
                  102u + 16 + static_cast<uint64_t>(i));
}

INSTANTIATE_TEST_SUITE_P(Degrees, StreamDegreeTest,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
