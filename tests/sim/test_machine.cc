/** @file Integration tests of the machine's data path and counters. */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace
{

using namespace rfl::sim;

/** Machine with prefetchers off so traffic is exactly predictable. */
MachineConfig
quietConfig()
{
    MachineConfig cfg = MachineConfig::smallTestMachine();
    cfg.l1Prefetcher.kind = PrefetcherKind::None;
    cfg.l2Prefetcher.kind = PrefetcherKind::None;
    return cfg;
}

TEST(Machine, ColdLoadReachesDram)
{
    Machine m(quietConfig());
    m.load(0, 0x10000, 8);
    EXPECT_EQ(m.l1(0).stats().readMisses, 1u);
    EXPECT_EQ(m.l2(0).stats().readMisses, 1u);
    EXPECT_EQ(m.l3(0).stats().readMisses, 1u);
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
    EXPECT_EQ(m.imc(0).stats().casWrites, 0u);
}

TEST(Machine, SecondLoadHitsL1)
{
    Machine m(quietConfig());
    m.load(0, 0x10000, 8);
    m.load(0, 0x10008, 8); // same line
    EXPECT_EQ(m.l1(0).stats().readHits, 1u);
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
}

TEST(Machine, LoadSpanningTwoLines)
{
    Machine m(quietConfig());
    m.load(0, 0x10000 + 60, 8); // crosses a 64 B boundary
    EXPECT_EQ(m.imc(0).stats().casReads, 2u);
    EXPECT_EQ(m.coreCounters(0).loadUops, 1u); // one instruction
}

TEST(Machine, StoreWriteAllocatesAndWritesBackOnFlush)
{
    Machine m(quietConfig());
    m.store(0, 0x20000, 8);
    // Write-allocate: the line is read from DRAM first.
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
    EXPECT_EQ(m.imc(0).stats().casWrites, 0u);
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, 1u);
}

TEST(Machine, CleanLinesDoNotWriteBack)
{
    Machine m(quietConfig());
    m.load(0, 0x30000, 8);
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, 0u);
}

TEST(Machine, DirtyLineWrittenBackOnceDespiteMultipleLevels)
{
    Machine m(quietConfig());
    m.store(0, 0x40000, 8);
    m.store(0, 0x40008, 8); // same line, still one dirty line
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, 1u);
}

TEST(Machine, NtStoreBypassesCaches)
{
    Machine m(quietConfig());
    m.storeNT(0, 0x50000, 64);
    EXPECT_EQ(m.imc(0).stats().casWrites, 1u);
    EXPECT_EQ(m.imc(0).stats().ntWrites, 1u);
    EXPECT_EQ(m.imc(0).stats().casReads, 0u); // no write-allocate
    EXPECT_EQ(m.l1(0).residentLines(), 0u);
    // A later load of the line must come from DRAM.
    m.load(0, 0x50000, 8);
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
}

TEST(Machine, NtStoreInvalidatesCachedCopy)
{
    Machine m(quietConfig());
    m.store(0, 0x60000, 8); // dirty in L1
    m.storeNT(0, 0x60000, 64);
    m.flushAllCaches();
    // The dirty copy was dropped (overwritten): only the NT write hits
    // the IMC, no flush writeback.
    EXPECT_EQ(m.imc(0).stats().casWrites, 1u);
}

TEST(Machine, FpRetirementByWidthAndFmaDoubleCount)
{
    Machine m(quietConfig());
    m.retireFp(0, VecWidth::Scalar, false, 10);
    m.retireFp(0, VecWidth::W4, false, 5);
    m.retireFp(0, VecWidth::W4, true, 3); // FMA: counter +2 each
    const CoreCounters &cc = m.coreCounters(0);
    EXPECT_EQ(cc.fpRetired[0], 10u);
    EXPECT_EQ(cc.fpRetired[2], 5u + 6u);
    // flops: 10*1 + 11*4 = 54.
    EXPECT_EQ(cc.flops(), 54u);
    // uops: one per instruction, FMA included.
    EXPECT_EQ(cc.fpUops, 18u);
}

TEST(MachineDeath, RetiringWiderThanMachinePanics)
{
    MachineConfig cfg = quietConfig();
    cfg.core.maxVectorDoubles = 2;
    Machine m(cfg);
    EXPECT_DEATH(m.retireFp(0, VecWidth::W4, false, 1), "panic");
}

TEST(MachineDeath, FmaOnNonFmaMachinePanics)
{
    MachineConfig cfg = quietConfig();
    cfg.core.hasFma = false;
    Machine m(cfg);
    EXPECT_DEATH(m.retireFp(0, VecWidth::Scalar, true, 1), "panic");
}

TEST(Machine, SnapshotDeltaIsolatesRegion)
{
    Machine m(quietConfig());
    m.load(0, 0x1000, 8);
    const Machine::Snapshot before = m.snapshot();
    m.load(0, 0x2000, 8);
    m.retireFp(0, VecWidth::Scalar, false, 4);
    const Machine::Snapshot delta = m.snapshot() - before;
    EXPECT_EQ(delta.totalImc().casReads, 1u);
    EXPECT_EQ(delta.totalFlops(), 4u);
    EXPECT_EQ(delta.cores[0].loadUops, 1u);
}

TEST(Machine, PrefetcherGeneratesImcTrafficWithoutDemandMisses)
{
    MachineConfig cfg = MachineConfig::smallTestMachine(); // streamers on
    Machine m(cfg);
    // Stream enough lines to train and run ahead.
    for (uint64_t i = 0; i < 64; ++i)
        m.load(0, 0x100000 + i * 64, 8);
    const ImcStats &imc = m.imc(0).stats();
    EXPECT_GT(imc.prefetchReads, 0u);
    // Prefetched lines arrive before demand: fewer L2 demand misses than
    // lines touched.
    EXPECT_LT(m.l2(0).stats().readMisses + m.l2(0).stats().writeMisses,
              64u);
}

TEST(Machine, PrefetchDisableRestoresExactTraffic)
{
    MachineConfig cfg = MachineConfig::smallTestMachine();
    Machine m(cfg);
    m.setPrefetchEnabled(false);
    for (uint64_t i = 0; i < 64; ++i)
        m.load(0, 0x200000 + i * 64, 8);
    EXPECT_EQ(m.imc(0).stats().casReads, 64u);
    EXPECT_EQ(m.imc(0).stats().prefetchReads, 0u);
}

TEST(Machine, SocketAffinity)
{
    MachineConfig cfg = quietConfig();
    cfg.coresPerSocket = 2;
    cfg.sockets = 2;
    Machine m(cfg);
    EXPECT_EQ(m.socketOf(0), 0);
    EXPECT_EQ(m.socketOf(1), 0);
    EXPECT_EQ(m.socketOf(2), 1);
    EXPECT_EQ(m.socketOf(3), 1);
    // LocalToAccessor: core 2's traffic hits socket 1's IMC.
    m.setMemPolicy(MemPolicy::LocalToAccessor);
    m.load(2, 0x70000, 8);
    EXPECT_EQ(m.imc(1).stats().casReads, 1u);
    EXPECT_EQ(m.imc(0).stats().casReads, 0u);
}

TEST(Machine, Socket0PolicyRoutesEverythingToSocket0)
{
    MachineConfig cfg = quietConfig();
    cfg.coresPerSocket = 2;
    cfg.sockets = 2;
    Machine m(cfg);
    m.setMemPolicy(MemPolicy::Socket0);
    m.load(3, 0x80000, 8);
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
    EXPECT_EQ(m.imc(1).stats().casReads, 0u);
}

TEST(Machine, InterleavePolicySplitsPages)
{
    MachineConfig cfg = quietConfig();
    cfg.coresPerSocket = 2;
    cfg.sockets = 2;
    Machine m(cfg);
    m.setMemPolicy(MemPolicy::Interleave);
    // Two addresses on adjacent 4 KiB pages.
    m.load(0, 0x0, 8);
    m.load(0, 0x1000, 8);
    EXPECT_EQ(m.imc(0).stats().casReads, 1u);
    EXPECT_EQ(m.imc(1).stats().casReads, 1u);
}

TEST(Machine, ResetClearsEverything)
{
    Machine m(quietConfig());
    m.store(0, 0x1000, 8);
    m.retireFp(0, VecWidth::Scalar, false, 5);
    m.reset();
    EXPECT_EQ(m.imc(0).stats().casReads, 0u);
    EXPECT_EQ(m.coreCounters(0).flops(), 0u);
    EXPECT_EQ(m.l1(0).residentLines(), 0u);
    // No writeback on the next flush: dirty state was discarded.
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, 0u);
}

TEST(Machine, EvictionCascadeWritesBackThroughHierarchy)
{
    // Working set > L1+L2 but < L3 with dirty lines: dirty L1 victims
    // land in L2, dirty L2 victims in L3; DRAM sees no writes until the
    // final flush.
    MachineConfig cfg = quietConfig();
    Machine m(cfg);
    const uint64_t lines =
        2 * cfg.l2.sizeBytes / 64; // 2x L2 capacity, fits 16 KiB L3
    for (uint64_t i = 0; i < lines; ++i)
        m.store(0, 0x100000 + i * 64, 8);
    EXPECT_EQ(m.imc(0).stats().casWrites, 0u);
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, lines);
}

TEST(Machine, FlushAttributionChargesCores)
{
    Machine m(quietConfig());
    m.store(0, 0x1000, 8);
    const Machine::Snapshot before = m.snapshot();
    m.flushAllCaches({0});
    const Machine::Snapshot delta = m.snapshot() - before;
    EXPECT_EQ(delta.cores[0].dramWritebackBytes, 64u);
}

// --- fast-path (resident-line filter / page memo) regressions ---

TEST(MachineFastPath, SameLineStreakCountsEveryAccess)
{
    Machine m(quietConfig());
    for (int i = 0; i < 10; ++i)
        m.load(0, 0x10000, 8); // one line, repeated
    EXPECT_EQ(m.l1(0).stats().readMisses, 1u);
    EXPECT_EQ(m.l1(0).stats().readHits, 9u);
    EXPECT_EQ(m.tlb(0).stats().accesses, 10u);
    EXPECT_EQ(m.coreCounters(0).loadUops, 10u);
}

TEST(MachineFastPath, StoreThroughFilterDirtiesLine)
{
    Machine m(quietConfig());
    m.load(0, 0x10000, 8);
    m.load(0, 0x10000, 8);  // admits the line to the filter
    m.store(0, 0x10000, 8); // fast-path write must set the dirty bit
    m.flushAllCaches();
    EXPECT_EQ(m.imc(0).stats().casWrites, 1u);
}

TEST(MachineFastPath, NtStoreEvictsFilteredLine)
{
    Machine m(quietConfig());
    m.load(0, 0x10000, 8);
    m.load(0, 0x10000, 8);    // line is in the filter now
    m.storeNT(0, 0x10000, 8); // invalidates the cached copy
    m.load(0, 0x10000, 8);    // must MISS again, not fast-path "hit"
    EXPECT_EQ(m.l1(0).stats().readMisses, 2u);
    EXPECT_EQ(m.imc(0).stats().casReads, 2u);
    EXPECT_EQ(m.imc(0).stats().ntWrites, 1u);
}

TEST(MachineFastPath, TwoStreamInterleaveStaysExact)
{
    // daxpy-style alternation between two lines: both fit the 4-entry
    // filter; hits/misses must match the analytic count.
    Machine m(quietConfig());
    for (int i = 0; i < 8; ++i) {
        m.load(0, 0x10000 + static_cast<uint64_t>(i) * 8, 8);  // line A
        m.load(0, 0x40000 + static_cast<uint64_t>(i) * 8, 8);  // line B
        m.store(0, 0x40000 + static_cast<uint64_t>(i) * 8, 8); // line B
    }
    EXPECT_EQ(m.l1(0).stats().readMisses, 2u);
    EXPECT_EQ(m.l1(0).stats().readHits, 14u);
    EXPECT_EQ(m.l1(0).stats().writeHits, 8u);
    EXPECT_EQ(m.tlb(0).stats().accesses, 24u);
}

TEST(MachineFastPath, ResetClearsMemos)
{
    Machine m(quietConfig());
    m.load(0, 0x10000, 8);
    m.load(0, 0x10000, 8);
    m.reset();
    m.load(0, 0x10000, 8); // cold again: full path, TLB walk and all
    EXPECT_EQ(m.l1(0).stats().readMisses, 1u);
    EXPECT_EQ(m.l1(0).stats().readHits, 0u);
    EXPECT_EQ(m.tlb(0).stats().accesses, 1u);
    EXPECT_EQ(m.tlb(0).stats().walks, 1u);
}

TEST(MachineFastPath, ToggleSelectsReferencePath)
{
    Machine fast(quietConfig());
    Machine ref(quietConfig());
    ref.setFastPath(false);
    EXPECT_TRUE(fast.fastPathEnabled());
    EXPECT_FALSE(ref.fastPathEnabled());
    for (Machine *m : {&fast, &ref}) {
        for (int i = 0; i < 16; ++i)
            m->load(0, 0x8000 + static_cast<uint64_t>(i) * 8, 8);
    }
    EXPECT_EQ(fast.l1(0).stats().readHits, ref.l1(0).stats().readHits);
    EXPECT_EQ(fast.l1(0).stats().readMisses,
              ref.l1(0).stats().readMisses);
    EXPECT_EQ(fast.tlb(0).stats().accesses, ref.tlb(0).stats().accesses);
}

TEST(Machine, RegionSecondsPositiveAndFrequencyScaled)
{
    Machine m(quietConfig());
    const Machine::Snapshot before = m.snapshot();
    for (int i = 0; i < 100; ++i)
        m.retireFp(0, VecWidth::Scalar, false, 1);
    const Machine::Snapshot delta = m.snapshot() - before;
    const double cycles = m.regionCycles(delta);
    EXPECT_GT(cycles, 0.0);
    EXPECT_NEAR(m.regionSeconds(delta),
                cycles / (m.config().core.freqGHz * 1e9), 1e-18);
}

} // namespace
