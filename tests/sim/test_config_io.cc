/** @file Tests for the machine-config file format. */

#include <fstream>

#include <gtest/gtest.h>

#include "sim/config_io.hh"

namespace
{

using namespace rfl::sim;

TEST(ConfigIo, EmptyTextGivesDefaultPlatform)
{
    const MachineConfig cfg = parseMachineConfig("");
    EXPECT_EQ(cfg.name, MachineConfig::defaultPlatform().name);
    EXPECT_EQ(cfg.totalCores(), 8);
}

TEST(ConfigIo, CommentsAndBlanksIgnored)
{
    const MachineConfig cfg = parseMachineConfig(
        "# a comment\n"
        "\n"
        "name = test-box   # trailing comment\n");
    EXPECT_EQ(cfg.name, "test-box");
}

TEST(ConfigIo, OverridesApply)
{
    const MachineConfig cfg = parseMachineConfig(
        "core.freq_ghz = 3.0\n"
        "core.vector_doubles = 8\n"
        "core.fma = false\n"
        "l1.size = 48k\n"
        "l1.assoc = 12\n"
        "l3.size = 32m\n"
        "sockets = 1\n"
        "cores_per_socket = 16\n"
        "dram.socket_gbs = 80\n"
        "dram.core_gbs = 20\n"
        "prefetch.l2 = none\n"
        "tlb.enabled = false\n");
    EXPECT_DOUBLE_EQ(cfg.core.freqGHz, 3.0);
    EXPECT_EQ(cfg.core.maxVectorDoubles, 8);
    EXPECT_FALSE(cfg.core.hasFma);
    EXPECT_EQ(cfg.l1.sizeBytes, 48u * 1024);
    EXPECT_EQ(cfg.l1.assoc, 12u);
    EXPECT_EQ(cfg.l3.sizeBytes, 32u * 1024 * 1024);
    EXPECT_EQ(cfg.totalCores(), 16);
    EXPECT_DOUBLE_EQ(cfg.socketDramGBs, 80.0);
    EXPECT_EQ(cfg.l2Prefetcher.kind, PrefetcherKind::None);
    EXPECT_FALSE(cfg.tlb.enabled);
}

TEST(ConfigIo, ReplacementAndPrefetchDetails)
{
    const MachineConfig cfg = parseMachineConfig(
        "l3.repl = random\n"
        "prefetch.l2_degree = 4\n"
        "prefetch.l2_distance = 16\n"
        "prefetch.l2_streams = 32\n");
    EXPECT_EQ(cfg.l3.repl, ReplPolicy::Random);
    EXPECT_EQ(cfg.l2Prefetcher.degree, 4);
    EXPECT_EQ(cfg.l2Prefetcher.distance, 16);
    EXPECT_EQ(cfg.l2Prefetcher.streams, 32);
}

TEST(ConfigIoDeath, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parseMachineConfig("corez.freq = 1\n"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parseMachineConfig("core.typo = 1\n"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ConfigIoDeath, MalformedLineIsFatal)
{
    EXPECT_EXIT(parseMachineConfig("just words\n"),
                ::testing::ExitedWithCode(1), "expected key");
    EXPECT_EXIT(parseMachineConfig("core.fma = banana\n"),
                ::testing::ExitedWithCode(1), "boolean");
    EXPECT_EXIT(parseMachineConfig("sockets = many\n"),
                ::testing::ExitedWithCode(1), "integer");
}

TEST(ConfigIoDeath, InvalidResultingMachineIsFatal)
{
    // Valid syntax, invalid machine (per-core bw > socket bw).
    EXPECT_EXIT(parseMachineConfig("dram.core_gbs = 100\n"),
                ::testing::ExitedWithCode(1), "bandwidth");
}

TEST(ConfigIo, FormatParsesBackIdentically)
{
    MachineConfig a = MachineConfig::defaultPlatform();
    a.name = "roundtrip";
    a.core.freqGHz = 3.25;
    a.l3.sizeBytes = 16 * 1024 * 1024;
    const MachineConfig b = parseMachineConfig(formatMachineConfig(a));
    EXPECT_EQ(b.name, a.name);
    EXPECT_DOUBLE_EQ(b.core.freqGHz, a.core.freqGHz);
    EXPECT_EQ(b.l3.sizeBytes, a.l3.sizeBytes);
    EXPECT_EQ(b.l2Prefetcher.kind, a.l2Prefetcher.kind);
}

TEST(ConfigIo, LoadFromFile)
{
    const std::string path = "/tmp/rfl_machine_test.cfg";
    {
        std::ofstream out(path);
        out << "name = from-file\ncore.freq_ghz = 2.0\n";
    }
    const MachineConfig cfg = loadMachineConfig(path);
    EXPECT_EQ(cfg.name, "from-file");
    EXPECT_DOUBLE_EQ(cfg.core.freqGHz, 2.0);
    std::remove(path.c_str());
}

TEST(ConfigIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadMachineConfig("/nonexistent/machine.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
