/**
 * @file
 * The counter-validation property at the heart of the paper: for every
 * kernel with an analytic model, the flops counted by the engines match
 * expectedFlops(), and (on a quiet machine, cold caches, flush-after)
 * the IMC traffic matches expectedColdTrafficBytes().
 */

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::kernels;

sim::MachineConfig
quietConfig()
{
    sim::MachineConfig cfg = sim::MachineConfig::defaultPlatform();
    cfg.l1Prefetcher.kind = sim::PrefetcherKind::None;
    cfg.l2Prefetcher.kind = sim::PrefetcherKind::None;
    return cfg;
}

/** (kernel spec, W tolerance, Q tolerance). */
using Case = std::tuple<const char *, double, double>;

class ModelValidation : public ::testing::TestWithParam<Case>
{
};

TEST_P(ModelValidation, NativeFlopsMatchModel)
{
    const auto [spec, w_tol, q_tol] = GetParam();
    (void)q_tol;
    for (int lanes : {1, 4}) {
        const std::unique_ptr<Kernel> k = createKernel(spec);
        k->init(7);
        NativeEngine e(lanes, true);
        k->run(e, 0, 1);
        const double measured =
            static_cast<double>(e.counters().flops());
        EXPECT_NEAR(measured, k->expectedFlops(),
                    w_tol * k->expectedFlops() + 1e-9)
            << spec << " lanes=" << lanes;
    }
}

TEST_P(ModelValidation, SimFlopsMatchModel)
{
    const auto [spec, w_tol, q_tol] = GetParam();
    (void)q_tol;
    sim::Machine machine(quietConfig());
    const std::unique_ptr<Kernel> k = createKernel(spec);
    k->init(7);
    SimEngine e(machine, 0, 4, true);
    k->run(e, 0, 1);
    const double measured =
        static_cast<double>(machine.coreCounters(0).flops());
    EXPECT_NEAR(measured, k->expectedFlops(),
                w_tol * k->expectedFlops() + 1e-9)
        << spec;
}

TEST_P(ModelValidation, SimTrafficMatchesColdModel)
{
    const auto [spec, w_tol, q_tol] = GetParam();
    (void)w_tol;
    sim::Machine machine(quietConfig());
    const std::unique_ptr<Kernel> k = createKernel(spec);
    k->setLlcHintBytes(machine.config().l3.sizeBytes);
    const double expected = k->expectedColdTrafficBytes();
    if (std::isnan(expected))
        GTEST_SKIP() << "no closed-form traffic model for " << spec;

    k->init(7);
    machine.reset();
    const sim::Machine::Snapshot before = machine.snapshot();
    SimEngine e(machine, 0, 4, true);
    k->run(e, 0, 1);
    machine.flushAllCaches({0}); // charge trailing writebacks
    const sim::Machine::Snapshot delta = machine.snapshot() - before;
    const double measured =
        static_cast<double>(delta.totalImc().totalBytes(64));
    EXPECT_NEAR(measured, expected, q_tol * expected + 256.0) << spec;
}

// Tolerances: W is exact for simple kernels; Q allows alignment slop and
// (for cache-regime models) boundary effects.
INSTANTIATE_TEST_SUITE_P(
    Kernels, ModelValidation,
    ::testing::Values(
        Case{"daxpy:n=65536", 0.0, 0.001},
        Case{"daxpy:n=100000", 0.0, 0.001}, // non-pow2 length
        Case{"dot:n=65536", 0.001, 0.001},
        Case{"triad:n=65536", 0.0, 0.001},
        Case{"triad-nt:n=65536", 0.0, 0.001},
        Case{"sum:n=65536", 0.001, 0.001},
        Case{"stencil3:n=65536", 0.01, 0.01},
        Case{"dgemv:m=256,n=256", 0.01, 0.02},
        Case{"dgemm-naive:n=96", 0.0, 0.02},
        Case{"dgemm-blocked:n=96", 0.0, 0.02},
        Case{"dgemm-opt:n=96", 0.0, 0.15}, // pack scratch adds traffic
        Case{"fft:n=4096", 0.001, 0.05},
        Case{"strided-sum:n=8192,stride=1", 0.001, 0.01},
        Case{"strided-sum:n=8192,stride=8", 0.001, 0.01},
        Case{"strided-sum:n=8192,stride=64", 0.001, 0.01},
        Case{"pointer-chase:nodes=8192", 0.0, 0.01}),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(ModelValidationExtra, SpmvTrafficIsLowerBound)
{
    // SpMV's x-gather term is a lower bound; measured >= model and
    // within 2x for a uniformly random matrix.
    sim::Machine machine(quietConfig());
    const std::unique_ptr<Kernel> k =
        createKernel("spmv-csr:rows=4096,nnz=8");
    k->init(7);
    machine.reset();
    const sim::Machine::Snapshot before = machine.snapshot();
    SimEngine e(machine, 0, 4, true);
    k->run(e, 0, 1);
    machine.flushAllCaches({0});
    const sim::Machine::Snapshot delta = machine.snapshot() - before;
    const double measured =
        static_cast<double>(delta.totalImc().totalBytes(64));
    const double model = k->expectedColdTrafficBytes();
    EXPECT_GE(measured, 0.9 * model);
    EXPECT_LE(measured, 2.0 * model);
}

TEST(ModelValidationExtra, WorkIsIndependentOfFmaAvailability)
{
    // The derived flops must be identical with and without FMA (the
    // counter convention guarantees it).
    for (const char *spec : {"daxpy:n=4096", "dgemm-blocked:n=64"}) {
        const std::unique_ptr<Kernel> k1 = createKernel(spec);
        k1->init(3);
        NativeEngine with_fma(4, true);
        k1->run(with_fma, 0, 1);

        const std::unique_ptr<Kernel> k2 = createKernel(spec);
        k2->init(3);
        NativeEngine without_fma(4, false);
        k2->run(without_fma, 0, 1);

        EXPECT_EQ(with_fma.counters().flops(),
                  without_fma.counters().flops())
            << spec;
    }
}

TEST(ModelValidationExtra, WorkIsIndependentOfVectorWidth)
{
    for (const char *spec :
         {"daxpy:n=4096", "triad:n=4096", "dgemv:m=128,n=128"}) {
        uint64_t flops[3];
        int idx = 0;
        for (int lanes : {1, 2, 4}) {
            const std::unique_ptr<Kernel> k = createKernel(spec);
            k->init(3);
            NativeEngine e(lanes, true);
            k->run(e, 0, 1);
            flops[idx++] = e.counters().flops();
        }
        // Reduction epilogues differ by (lanes-1) scalar adds per
        // reduction (dgemv runs one per matrix row: 3*128 of 32896 for
        // the AVX case); require 2% agreement.
        EXPECT_NEAR(static_cast<double>(flops[1]),
                    static_cast<double>(flops[0]),
                    0.02 * static_cast<double>(flops[0]) + 16)
            << spec;
        EXPECT_NEAR(static_cast<double>(flops[2]),
                    static_cast<double>(flops[0]),
                    0.02 * static_cast<double>(flops[0]) + 16)
            << spec;
    }
}

TEST(ModelValidationExtra, WarmTrafficVanishesForResidentSets)
{
    // A warm LLC-resident daxpy produces (nearly) no DRAM traffic.
    sim::Machine machine(quietConfig());
    const std::unique_ptr<Kernel> k = createKernel("daxpy:n=16384");
    // Working set 256 KiB << 10 MiB L3.
    EXPECT_DOUBLE_EQ(
        k->expectedWarmTrafficBytes(machine.config().l3.sizeBytes), 0.0);

    k->init(7);
    machine.reset();
    SimEngine warmup(machine, 0, 4, true);
    k->run(warmup, 0, 1); // prime caches
    const sim::Machine::Snapshot before = machine.snapshot();
    SimEngine e(machine, 0, 4, true);
    k->run(e, 0, 1);
    const sim::Machine::Snapshot delta = machine.snapshot() - before;
    EXPECT_LT(delta.totalImc().totalBytes(64),
              0.02 * k->expectedColdTrafficBytes());
}

TEST(ModelValidationExtra, WarmTrafficEqualsColdForStreamingSets)
{
    const std::unique_ptr<Kernel> k = createKernel("daxpy:n=16777216");
    // 256 MiB working set >> LLC: warm == cold.
    EXPECT_DOUBLE_EQ(k->expectedWarmTrafficBytes(10 * 1024 * 1024),
                     k->expectedColdTrafficBytes());
}

} // namespace
