/** @file Unit tests of the engine instrumentation seam. */

#include <gtest/gtest.h>

#include "kernels/engine.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::kernels;

TEST(NativeEngine, ScalarOpsComputeAndCount)
{
    NativeEngine e(1, true);
    EXPECT_DOUBLE_EQ(e.add(2.0, 3.0), 5.0);
    EXPECT_DOUBLE_EQ(e.sub(2.0, 3.0), -1.0);
    EXPECT_DOUBLE_EQ(e.mul(2.0, 3.0), 6.0);
    EXPECT_DOUBLE_EQ(e.div(6.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(e.fmadd(2.0, 3.0, 1.0), 7.0);
    // 4 plain ops + 1 FMA (counts 2): 6 scalar retirements = 6 flops.
    EXPECT_EQ(e.counters().fpRetired[0], 6u);
    EXPECT_EQ(e.counters().flops(), 6u);
}

TEST(NativeEngine, FmaOffSplitsIntoTwoOps)
{
    NativeEngine e(1, false);
    EXPECT_DOUBLE_EQ(e.fmadd(2.0, 3.0, 1.0), 7.0);
    EXPECT_EQ(e.counters().fpRetired[0], 2u); // mul + add
    EXPECT_EQ(e.counters().flops(), 2u);      // same flops either way
}

TEST(NativeEngine, VectorOpsComputeLanewise)
{
    NativeEngine e(4, true);
    double data[4] = {1.0, 2.0, 3.0, 4.0};
    const Vec v = e.vload(data);
    const Vec s = e.vbroadcast(10.0);
    const Vec sum = e.vadd(v, s);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(sum[i], data[i] + 10.0);
    const Vec prod = e.vmul(v, v);
    EXPECT_DOUBLE_EQ(prod[3], 16.0);
    const Vec fma = e.vfmadd(v, v, s);
    EXPECT_DOUBLE_EQ(fma[2], 19.0);
    EXPECT_DOUBLE_EQ(e.vreduce(v), 10.0);
}

TEST(NativeEngine, VectorCountsByWidthClass)
{
    NativeEngine e(4, true);
    double data[4] = {1, 2, 3, 4};
    const Vec v = e.vload(data);
    e.vadd(v, v);           // 1x 256b
    e.vfmadd(v, v, v);      // 2x 256b (FMA)
    e.vreduce(v);           // 3 scalar adds
    const NativeCounters &c = e.counters();
    EXPECT_EQ(c.fpRetired[2], 3u);
    EXPECT_EQ(c.fpRetired[0], 3u);
    // flops = 3*4 + 3*1 = 15.
    EXPECT_EQ(c.flops(), 15u);
    EXPECT_EQ(c.loads, 1u);
}

TEST(NativeEngine, StoresWriteThrough)
{
    NativeEngine e(2, true);
    double out[2] = {0, 0};
    Vec v = e.vbroadcast(7.0);
    e.vstore(out, v);
    EXPECT_DOUBLE_EQ(out[0], 7.0);
    EXPECT_DOUBLE_EQ(out[1], 7.0);
    EXPECT_EQ(e.counters().stores, 1u);
}

TEST(NativeEngine, LoopAndRawLoadCounting)
{
    NativeEngine e(1, true);
    int idx = 3;
    e.loadRaw(&idx, 4);
    e.loop(10, 2);
    EXPECT_EQ(e.counters().loads, 1u);
    EXPECT_EQ(e.counters().otherUops, 20u);
}

class SimEngineTest : public ::testing::Test
{
  protected:
    SimEngineTest() : machine_(quiet()) {}

    static sim::MachineConfig
    quiet()
    {
        sim::MachineConfig cfg = sim::MachineConfig::smallTestMachine();
        cfg.l1Prefetcher.kind = sim::PrefetcherKind::None;
        cfg.l2Prefetcher.kind = sim::PrefetcherKind::None;
        return cfg;
    }

    sim::Machine machine_;
};

TEST_F(SimEngineTest, LoadsRouteThroughHierarchyAndReturnData)
{
    SimEngine e(machine_, 0, 1, true);
    double x = 2.5;
    EXPECT_DOUBLE_EQ(e.load(&x), 2.5);
    EXPECT_EQ(machine_.imc(0).stats().casReads, 1u);
}

TEST_F(SimEngineTest, StoresWriteDataAndDirtyLines)
{
    SimEngine e(machine_, 0, 1, true);
    double x = 0.0;
    e.store(&x, 9.0);
    EXPECT_DOUBLE_EQ(x, 9.0);
    machine_.flushAllCaches();
    EXPECT_EQ(machine_.imc(0).stats().casWrites, 1u);
}

TEST_F(SimEngineTest, FpRetirementMatchesNativeConvention)
{
    SimEngine e(machine_, 0, 4, true);
    const Vec a = e.vbroadcast(1.0);
    e.vfmadd(a, a, a); // FMA: +2 on 256b counter
    e.vadd(a, a);      // +1
    const sim::CoreCounters &cc = machine_.coreCounters(0);
    EXPECT_EQ(cc.fpRetired[2], 3u);
    EXPECT_EQ(cc.flops(), 12u);
}

TEST_F(SimEngineTest, FmaFallsBackWhenDisabled)
{
    SimEngine e(machine_, 0, 1, /*use_fma=*/false);
    EXPECT_FALSE(e.fmaEnabled());
    EXPECT_DOUBLE_EQ(e.fmadd(2.0, 3.0, 4.0), 10.0);
    EXPECT_EQ(machine_.coreCounters(0).fpRetired[0], 2u); // mul + add
}

TEST_F(SimEngineTest, VectorLoadTouchesWholeWidth)
{
    SimEngine e(machine_, 0, 4, true);
    alignas(64) double data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const Vec v = e.vload(data);
    EXPECT_DOUBLE_EQ(v[3], 4.0);
    // One load uop, one line touched.
    EXPECT_EQ(machine_.coreCounters(0).loadUops, 1u);
    EXPECT_EQ(machine_.imc(0).stats().casReads, 1u);
}

TEST_F(SimEngineTest, NtStoreCountsAtImc)
{
    SimEngine e(machine_, 0, 4, true);
    alignas(64) double out[4];
    e.vstoreNT(out, e.vbroadcast(1.0));
    EXPECT_EQ(machine_.imc(0).stats().ntWrites, 1u);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST_F(SimEngineTest, RejectsLanesBeyondMachineWidth)
{
    EXPECT_EXIT((SimEngine{machine_, 0, 8, true}),
                ::testing::ExitedWithCode(1), "lanes");
}

TEST(EngineParity, SameArithmeticOnBothEngines)
{
    sim::MachineConfig cfg = sim::MachineConfig::smallTestMachine();
    sim::Machine machine(cfg);
    NativeEngine ne(4, true);
    SimEngine se(machine, 0, 4, true);

    alignas(64) double a[4] = {1.5, -2.0, 0.25, 8.0};
    alignas(64) double b[4] = {2.0, 3.0, -1.0, 0.5};
    const Vec na = ne.vload(a), nb = ne.vload(b);
    const Vec sa = se.vload(a), sb = se.vload(b);
    const Vec nr = ne.vfmadd(na, nb, na);
    const Vec sr = se.vfmadd(sa, sb, sa);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(nr[i], sr[i]);
    EXPECT_DOUBLE_EQ(ne.vreduce(nr), se.vreduce(sr));
}

} // namespace
