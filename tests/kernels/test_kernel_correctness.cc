/**
 * @file
 * Numerical correctness of the kernels: native-vs-sim checksum parity
 * (proves the instrumentation does not perturb arithmetic) and
 * reference-result checks for the nontrivial kernels (dgemm variants
 * agree with the naive triple loop; FFT matches a direct DFT).
 */

#include <cmath>
#include <complex>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/dgemm.hh"
#include "kernels/fft.hh"
#include "kernels/registry.hh"
#include "sim/machine.hh"
#include "support/rng.hh"

namespace
{

using namespace rfl;
using namespace rfl::kernels;

class ChecksumParity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChecksumParity, NativeAndSimProduceIdenticalResults)
{
    const char *spec = GetParam();

    const std::unique_ptr<Kernel> kn = createKernel(spec);
    kn->init(99);
    NativeEngine ne(4, true);
    kn->run(ne, 0, 1);
    const double native_sum = kn->checksum();

    sim::Machine machine(sim::MachineConfig::defaultPlatform());
    const std::unique_ptr<Kernel> ks = createKernel(spec);
    ks->init(99);
    SimEngine se(machine, 0, 4, true);
    ks->run(se, 0, 1);
    const double sim_sum = ks->checksum();

    EXPECT_DOUBLE_EQ(native_sum, sim_sum) << spec;
    EXPECT_TRUE(std::isfinite(native_sum));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ChecksumParity,
    ::testing::Values("daxpy:n=10000", "dot:n=10000", "triad:n=10000",
                      "triad-nt:n=10000", "sum:n=10000",
                      "stencil3:n=10000", "dgemv:m=64,n=96",
                      "dgemm-naive:n=48", "dgemm-blocked:n=48",
                      "dgemm-opt:n=48", "fft:n=1024",
                      "spmv-csr:rows=512,nnz=8",
                      "strided-sum:n=4096,stride=16",
                      "pointer-chase:nodes=256"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class PartitionInvariance : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PartitionInvariance, PartitionedRunMatchesSequentialRun)
{
    const char *spec = GetParam();

    const std::unique_ptr<Kernel> seq = createKernel(spec);
    seq->init(5);
    NativeEngine e1(4, true);
    seq->run(e1, 0, 1);

    const std::unique_ptr<Kernel> par = createKernel(spec);
    par->init(5);
    for (int part = 0; part < 4; ++part) {
        NativeEngine ep(4, true);
        par->run(ep, part, 4);
    }

    EXPECT_NEAR(seq->checksum(), par->checksum(),
                1e-9 * std::abs(seq->checksum()) + 1e-12)
        << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PartitionInvariance,
    ::testing::Values("daxpy:n=10000", "dot:n=10000", "triad:n=10000",
                      "sum:n=10000", "stencil3:n=10000",
                      "dgemv:m=64,n=96", "dgemm-blocked:n=48",
                      "dgemm-opt:n=48", "spmv-csr:rows=512,nnz=8",
                      "strided-sum:n=4096,stride=16"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(DgemmVariants, AllAgreeWithEachOther)
{
    const size_t n = 40;
    double sums[3];
    int idx = 0;
    for (const char *spec :
         {"dgemm-naive:n=40", "dgemm-blocked:n=40", "dgemm-opt:n=40"}) {
        const std::unique_ptr<Kernel> k = createKernel(spec);
        k->init(11);
        NativeEngine e(4, true);
        k->run(e, 0, 1);
        sums[idx++] = k->checksum();
    }
    (void)n;
    EXPECT_NEAR(sums[0], sums[1], 1e-8 * std::abs(sums[0]));
    EXPECT_NEAR(sums[0], sums[2], 1e-8 * std::abs(sums[0]));
}

TEST(Fft, MatchesDirectDftOnSmallInput)
{
    // Run the kernel's FFT and a textbook O(n^2) DFT on identical data.
    const size_t n = 64;
    Fft fft(n);
    fft.init(123);

    // Reconstruct the same input the kernel starts from.
    Rng rng(123);
    std::vector<std::complex<double>> input(n);
    for (size_t i = 0; i < n; ++i) {
        const double re = rng.nextDouble(-1.0, 1.0);
        const double im = rng.nextDouble(-1.0, 1.0);
        input[i] = {re, im};
    }

    NativeEngine e(1, true);
    fft.run(e, 0, 1);

    for (size_t k = 0; k < n; k += 7) { // spot-check bins
        std::complex<double> ref(0.0, 0.0);
        for (size_t t = 0; t < n; ++t) {
            const double ang = -2.0 * M_PI * static_cast<double>(k * t) /
                               static_cast<double>(n);
            ref += input[t] * std::complex<double>(std::cos(ang),
                                                   std::sin(ang));
        }
        // The kernel leaves its spectrum in data_; access via checksum
        // is too coarse, so re-run a second instance and inspect
        // through a fresh native run on raw memory: instead verify via
        // Parseval (energy conservation), which pins down correctness
        // to a scale factor that a wrong butterfly would break.
        (void)ref;
    }

    // Parseval: sum |X[k]|^2 = n * sum |x[t]|^2.
    double time_energy = 0.0;
    for (const auto &v : input)
        time_energy += std::norm(v);
    // Recompute spectrum energy by running FFT on a second instance and
    // summing its checksum-visible data: use a dedicated accessor —
    // checksum() is weighted, so instead run the inverse check: FFT of
    // FFT(x) conj-trick is overkill; use the energy of the output via a
    // reference radix-2 implementation.
    std::vector<std::complex<double>> ref = input;
    // Reference iterative FFT (independent implementation).
    {
        const size_t bits = 6;
        for (size_t i = 0; i < n; ++i) {
            size_t r = 0;
            for (size_t b = 0; b < bits; ++b)
                if (i & (1ull << b))
                    r |= 1ull << (bits - 1 - b);
            if (r > i)
                std::swap(ref[i], ref[r]);
        }
        for (size_t len = 2; len <= n; len <<= 1) {
            const double ang = -2.0 * M_PI / static_cast<double>(len);
            const std::complex<double> wl(std::cos(ang), std::sin(ang));
            for (size_t base = 0; base < n; base += len) {
                std::complex<double> w(1.0, 0.0);
                for (size_t k2 = 0; k2 < len / 2; ++k2) {
                    const auto t = w * ref[base + k2 + len / 2];
                    ref[base + k2 + len / 2] = ref[base + k2] - t;
                    ref[base + k2] += t;
                    w *= wl;
                }
            }
        }
    }
    double freq_energy = 0.0;
    for (const auto &v : ref)
        freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
                1e-6 * freq_energy);

    // And the kernel's output equals the reference FFT: compare
    // checksums of a kernel instance vs the reference data digest.
    double ref_checksum = 0.0;
    for (size_t i = 0; i < 2 * n; ++i) {
        const double v = i % 2 == 0 ? ref[i / 2].real() : ref[i / 2].imag();
        ref_checksum += v * (i % 7 == 0 ? 1.0 : 0.5);
    }
    EXPECT_NEAR(fft.checksum(), ref_checksum,
                1e-9 * std::abs(ref_checksum) + 1e-9);
}

TEST(FftDeath, NonPowerOfTwoIsFatal)
{
    EXPECT_EXIT(Fft{1000}, ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Registry, CreatesEveryAdvertisedKernel)
{
    for (const std::string &name : kernelNames()) {
        const std::unique_ptr<Kernel> k = createKernel(name);
        ASSERT_NE(k, nullptr) << name;
        EXPECT_EQ(k->name(), name);
        EXPECT_GT(k->workingSetBytes(), 0u);
    }
    // Every synthetic kernel has a help line. Help may list additional
    // file-parameterized workloads (trace replay) that are not
    // default-constructible and hence not in kernelNames().
    for (const std::string &name : kernelNames()) {
        bool found = false;
        for (const std::string &line : kernelHelp())
            found = found || line.rfind(name, 0) == 0;
        EXPECT_TRUE(found) << "no help line for kernel '" << name << "'";
    }
    EXPECT_GE(kernelHelp().size(), kernelNames().size());
}

TEST(RegistryDeath, UnknownKernelIsFatal)
{
    EXPECT_EXIT(createKernel("bogus"), ::testing::ExitedWithCode(1),
                "unknown kernel");
    EXPECT_EXIT(createKernel("daxpy:n"), ::testing::ExitedWithCode(1),
                "bad parameter");
}

TEST(Partition, CoversRangeExactlyOnce)
{
    for (size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
        for (int nparts : {1, 2, 3, 4, 8}) {
            size_t covered = 0;
            size_t prev_hi = 0;
            for (int p = 0; p < nparts; ++p) {
                const auto [lo, hi] = partitionRange(n, p, nparts);
                EXPECT_EQ(lo, prev_hi);
                EXPECT_LE(hi, n);
                covered += hi - lo;
                prev_hi = hi;
            }
            EXPECT_EQ(covered, n) << "n=" << n << " parts=" << nparts;
            EXPECT_EQ(prev_hi, n);
        }
    }
}

TEST(Partition, AlignmentRespected)
{
    for (int p = 0; p < 3; ++p) {
        const auto [lo, hi] = partitionRange(1000, p, 3, 8);
        EXPECT_EQ(lo % 8, 0u);
        if (hi != 1000)
            EXPECT_EQ(hi % 8, 0u);
    }
}

} // namespace
