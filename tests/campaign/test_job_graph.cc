/** @file Tests for CampaignSpec -> JobGraph expansion. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "campaign/job_graph.hh"

namespace
{

using namespace rfl::campaign;
using rfl::sim::MachineConfig;

CampaignSpec
twoVariantSpec()
{
    CampaignSpec spec("graph");
    spec.addMachine(MachineConfig::smallTestMachine());
    spec.addKernels({"daxpy:n=256", "sum:n=256", "dot:n=256"});

    rfl::roofline::MeasureOptions cold;
    cold.repetitions = 1;
    spec.addVariant("cold-1c", cold);

    rfl::roofline::MeasureOptions warm;
    warm.protocol = rfl::roofline::CacheProtocol::Warm;
    warm.repetitions = 1;
    warm.cores = {0, 1};
    spec.addVariant("warm-2c", warm);
    return spec;
}

TEST(JobGraph, GridExpansion)
{
    const JobGraph graph = JobGraph::expand(twoVariantSpec());
    // 2 distinct (cores) signatures -> 2 ceiling jobs; 3 kernels x 2
    // variants -> 6 measure jobs.
    EXPECT_EQ(graph.ceilingJobs(), 2u);
    EXPECT_EQ(graph.measureJobs(), 6u);
    EXPECT_EQ(graph.size(), 8u);
}

TEST(JobGraph, CeilingJobsDeduplicateAcrossVariants)
{
    CampaignSpec spec("dedup");
    spec.addMachine(MachineConfig::smallTestMachine());
    spec.addKernel("sum:n=256");
    // Two variants with the same cores/numa/prefetch signature but
    // different protocols share one ceiling characterization.
    rfl::roofline::MeasureOptions cold, warm;
    warm.protocol = rfl::roofline::CacheProtocol::Warm;
    spec.addVariant("cold", cold).addVariant("warm", warm);

    const JobGraph graph = JobGraph::expand(spec);
    EXPECT_EQ(graph.ceilingJobs(), 1u);
    EXPECT_EQ(graph.measureJobs(), 2u);
}

TEST(JobGraph, MeasureJobsDependOnTheirCeiling)
{
    const JobGraph graph = JobGraph::expand(twoVariantSpec());
    for (const Job &job : graph.jobs()) {
        if (job.kind == JobKind::Ceiling) {
            EXPECT_TRUE(job.deps.empty());
            continue;
        }
        ASSERT_EQ(job.deps.size(), 1u);
        const Job &dep = graph.jobs()[job.deps[0]];
        EXPECT_EQ(dep.kind, JobKind::Ceiling);
        EXPECT_EQ(dep.machineIndex, job.machineIndex);
        EXPECT_EQ(graph.ceilingJobFor(job), dep.id);
    }
}

TEST(JobGraph, CacheKeysAreUniqueAndContentAddressed)
{
    const CampaignSpec spec = twoVariantSpec();
    const JobGraph graph = JobGraph::expand(spec);

    std::set<std::string> keys;
    for (const Job &job : graph.jobs())
        keys.insert(job.cacheKey);
    EXPECT_EQ(keys.size(), graph.size());

    // Same content -> same key, regardless of spec object identity.
    const JobGraph again = JobGraph::expand(twoVariantSpec());
    for (size_t i = 0; i < graph.size(); ++i)
        EXPECT_EQ(graph.jobs()[i].cacheKey, again.jobs()[i].cacheKey);

    // A different machine config moves every key.
    const std::string key0 = measureCacheKey(
        spec.machines()[0].config, spec.kernels()[0],
        spec.variants()[0].opts);
    MachineConfig other = spec.machines()[0].config;
    other.core.freqGHz += 0.1;
    EXPECT_NE(measureCacheKey(other, spec.kernels()[0],
                              spec.variants()[0].opts),
              key0);
}

TEST(JobGraph, PerfBackendAppendsNativeJobsAfterEverySimJob)
{
    CampaignSpec spec = twoVariantSpec();
    spec.addBackend("sim").addBackend("perf");
    const JobGraph graph = JobGraph::expand(spec);

    // The sim prefix must be byte-for-byte the sim-only expansion: job
    // ids (and with them cached artifacts) may not move because
    // hardware rows were requested.
    const JobGraph simOnly = JobGraph::expand(twoVariantSpec());
    ASSERT_GT(graph.size(), simOnly.size());
    for (size_t i = 0; i < simOnly.size(); ++i) {
        EXPECT_EQ(graph.jobs()[i].kind, simOnly.jobs()[i].kind);
        EXPECT_EQ(graph.jobs()[i].cacheKey, simOnly.jobs()[i].cacheKey);
    }
    // 3 kernels x 2 variants native jobs, all trailing.
    size_t native = 0;
    for (size_t i = simOnly.size(); i < graph.size(); ++i) {
        EXPECT_EQ(graph.jobs()[i].kind, JobKind::NativeMeasure);
        ++native;
    }
    EXPECT_EQ(native, 6u);

    // Each native job depends on its scenario's ceiling so the row can
    // be plotted against the simulated roofs.
    for (const Job &job : graph.jobs()) {
        if (job.kind != JobKind::NativeMeasure)
            continue;
        ASSERT_EQ(job.deps.size(), 1u);
        EXPECT_EQ(graph.jobs()[job.deps[0]].kind, JobKind::Ceiling);
    }
}

TEST(JobGraph, PerfOnlyBackendSkipsSimMeasureJobs)
{
    CampaignSpec spec = twoVariantSpec();
    spec.addBackend("perf");
    const JobGraph graph = JobGraph::expand(spec);
    for (const Job &job : graph.jobs())
        EXPECT_NE(job.kind, JobKind::Measure);
}

TEST(JobGraph, DuplicateNativeKeysChainBehindTheFirstJob)
{
    // The native cache key ignores the machine index (the row measures
    // the host, not the simulated machine), so a second machine entry
    // repeats every key. Each duplicate must depend on the first job
    // with its key: one native run happens, the rest replay it from
    // the cache instead of racing it cold.
    CampaignSpec spec = twoVariantSpec();
    spec.addMachine("second", MachineConfig::smallTestMachine());
    spec.addBackend("sim").addBackend("perf");
    const JobGraph graph = JobGraph::expand(spec);

    std::map<std::string, size_t> firstByKey;
    for (const Job &job : graph.jobs()) {
        if (job.kind != JobKind::NativeMeasure)
            continue;
        const auto [it, inserted] =
            firstByKey.emplace(job.cacheKey, job.id);
        if (inserted) {
            ASSERT_EQ(job.deps.size(), 1u);
            EXPECT_EQ(graph.jobs()[job.deps[0]].kind,
                      JobKind::Ceiling);
        } else {
            ASSERT_EQ(job.deps.size(), 2u);
            EXPECT_EQ(graph.jobs()[job.deps[0]].kind,
                      JobKind::Ceiling);
            EXPECT_EQ(job.deps[1], it->second);
        }
    }
    // 3 kernels x 2 variants of unique keys, each duplicated once.
    EXPECT_EQ(firstByKey.size(), 6u);
}

TEST(JobGraph, NativeMeasureCacheKeyIsHostScoped)
{
    const CampaignSpec spec = twoVariantSpec();
    const std::string key = nativeMeasureCacheKey(
        spec.kernels()[0], spec.variants()[0].opts);
    EXPECT_EQ(key.rfind("native|", 0), 0u);
    // Host identity is process-stable; the key is machine-config-free
    // by design (the simulated machine does not shape the host CPU),
    // so the same kernel/options pair dedups across machine entries.
    EXPECT_EQ(key, nativeMeasureCacheKey(spec.kernels()[0],
                                         spec.variants()[0].opts));
    EXPECT_NE(key, nativeMeasureCacheKey(spec.kernels()[1],
                                         spec.variants()[0].opts));
    EXPECT_NE(key.find(hostIdentityHash()), std::string::npos);
}

} // namespace
