/**
 * @file
 * Campaign trace-record / trace-replay job tests.
 *
 * A `trace = <kernel spec>` campaign entry expands into one
 * trace-record job per machine (content-addressed trace file) plus one
 * trace-replay measurement per variant. The replayed stream is the
 * kernel's exact access stream, so when the record parameters coincide
 * with a variant's (same lanes, same seed, single core), the replay
 * measurement must reproduce the direct kernel measurement number for
 * number — the strongest cross-subsystem check the trace IR admits.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "campaign/executor.hh"
#include "campaign/job_graph.hh"
#include "campaign/result_cache.hh"
#include "campaign/spec.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace rfl;
using namespace rfl::campaign;

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "rfl-" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Machine, one kernel, the same kernel traced, one cold variant whose
 *  options match the trace-record parameters. */
CampaignSpec
traceSpec()
{
    const sim::MachineConfig config = sim::MachineConfig::defaultPlatform();
    CampaignSpec spec("trace-jobs");
    spec.addMachine("default", config);
    spec.addKernel("daxpy:n=2048");
    spec.addTrace("daxpy:n=2048");
    roofline::MeasureOptions cold;
    cold.repetitions = 2;
    cold.cores = {0};
    cold.lanes = 0; // machine max == record lanes
    cold.seed = traceRecordParams(config).seed;
    spec.addVariant("cold-1c", cold);
    return spec;
}

TEST(TraceJobGraph, ExpandsRecordAndReplayJobs)
{
    const CampaignSpec spec = traceSpec();
    const JobGraph graph = JobGraph::expand(spec);

    size_t records = 0, replays = 0;
    for (const Job &job : graph.jobs()) {
        if (job.kind == JobKind::TraceRecord) {
            ++records;
            EXPECT_TRUE(job.deps.empty()) << job.describe(spec);
            EXPECT_EQ(job.cacheKey.rfind("trace|", 0), 0u);
        } else if (job.kind == JobKind::TraceReplay) {
            ++replays;
            // Dep order is load-bearing: ceiling first, recording second.
            ASSERT_EQ(job.deps.size(), 2u) << job.describe(spec);
            EXPECT_EQ(graph.jobs()[job.deps[0]].kind, JobKind::Ceiling);
            EXPECT_EQ(graph.jobs()[job.deps[1]].kind,
                      JobKind::TraceRecord);
            EXPECT_EQ(graph.ceilingJobFor(job), job.deps[0]);
            EXPECT_EQ(job.cacheKey.rfind("replay|", 0), 0u);
        }
    }
    EXPECT_EQ(records, 1u);
    EXPECT_EQ(replays, 1u);
    EXPECT_EQ(graph.size(),
              graph.ceilingJobs() + /*measure*/ 1 + records + replays);
}

TEST(TraceJobs, ReplayReproducesDirectMeasurement)
{
    const std::string trace_dir = freshDir("trace-jobs-replay");
    ExecutorOptions opts;
    opts.threads = 2;
    opts.traceDir = trace_dir;

    const CampaignSpec spec = traceSpec();
    CampaignExecutor executor(opts);
    const CampaignRun run = executor.run(spec);

    const roofline::Measurement &direct = run.measurementFor(0, 0, 0);
    const roofline::Measurement &replay =
        run.replayMeasurementFor(0, 0, 0);

    // Identical access stream -> identical W, Q, T to the last bit.
    EXPECT_EQ(direct.flops, replay.flops);
    EXPECT_EQ(direct.trafficBytes, replay.trafficBytes);
    EXPECT_EQ(direct.seconds, replay.seconds);
    EXPECT_EQ(replay.kernel, "trace(daxpy:n=2048)");

    // The recorded file is content-addressed and self-describing.
    const Job *record_job = nullptr;
    for (const Job &job : run.jobs)
        if (job.kind == JobKind::TraceRecord)
            record_job = &job;
    ASSERT_NE(record_job, nullptr);
    const TraceInfo &info = run.results[record_job->id].trace;
    trace::TraceReader reader;
    ASSERT_TRUE(reader.open(info.path)) << reader.error();
    EXPECT_EQ(reader.stableHash(), info.summary.hash);
    EXPECT_NE(info.path.find(trace_dir), std::string::npos);

    std::filesystem::remove_all(trace_dir);
}

TEST(TraceJobs, SecondRunIsFullyCached)
{
    const std::string trace_dir = freshDir("trace-jobs-cache");
    const std::string spill =
        ::testing::TempDir() + "rfl-trace-jobs-cache.jsonl";
    std::remove(spill.c_str());

    const CampaignSpec spec = traceSpec();
    {
        ResultCache cache(spill);
        ExecutorOptions opts;
        opts.threads = 2;
        opts.cache = &cache;
        opts.traceDir = trace_dir;
        const CampaignRun first = CampaignExecutor(opts).run(spec);
        EXPECT_EQ(first.cacheHits, 0u);
        EXPECT_EQ(first.simulated, first.jobs.size());
    }
    {
        // New process simulation: fresh cache object over the same
        // spill file and trace directory.
        ResultCache cache(spill);
        ExecutorOptions opts;
        opts.threads = 2;
        opts.cache = &cache;
        opts.traceDir = trace_dir;
        const CampaignRun second = CampaignExecutor(opts).run(spec);
        EXPECT_EQ(second.cacheHits, second.jobs.size());
        EXPECT_EQ(second.simulated, 0u);
    }
    std::remove(spill.c_str());
    std::filesystem::remove_all(trace_dir);
}

TEST(TraceJobs, MissingTraceFileIsReRecorded)
{
    const std::string trace_dir = freshDir("trace-jobs-rerecord");
    const std::string spill =
        ::testing::TempDir() + "rfl-trace-jobs-rerecord.jsonl";
    std::remove(spill.c_str());

    const CampaignSpec spec = traceSpec();
    std::string trace_path;
    {
        ResultCache cache(spill);
        ExecutorOptions opts;
        opts.cache = &cache;
        opts.traceDir = trace_dir;
        const CampaignRun run = CampaignExecutor(opts).run(spec);
        for (const Job &job : run.jobs)
            if (job.kind == JobKind::TraceRecord)
                trace_path = run.results[job.id].trace.path;
    }
    ASSERT_FALSE(trace_path.empty());
    // Prune the trace directory behind the cache's back.
    std::filesystem::remove_all(trace_dir);
    {
        ResultCache cache(spill);
        ExecutorOptions opts;
        opts.cache = &cache;
        opts.traceDir = trace_dir;
        const CampaignRun run = CampaignExecutor(opts).run(spec);
        // The record job noticed the stale cache entry and re-recorded;
        // replay/measure/ceiling results still come from the cache.
        EXPECT_EQ(run.simulated, 1u);
        EXPECT_TRUE(std::filesystem::exists(trace_path));
    }
    std::remove(spill.c_str());
    std::filesystem::remove_all(trace_dir);
}

/** A 'trace:file=' kernel's measurement is determined by the file's
 *  content, so regenerating the file must change the measure cache
 *  key (a path-only key would silently serve the stale stream). */
TEST(TraceJobs, FileKernelCacheKeyTracksContent)
{
    const std::string dir = freshDir("trace-jobs-key");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/w.rfltrace";

    auto record = [&](uint32_t n_records) {
        trace::TraceWriter writer(path);
        trace::AccessBatch batch;
        for (uint32_t i = 0; i < n_records; ++i)
            batch.pushMem(trace::AccessKind::Load, 0,
                          (1ull << 32) + 8 * i, 8);
        writer.append(batch);
        writer.finish();
    };

    const sim::MachineConfig config =
        sim::MachineConfig::smallTestMachine();
    RunOptions opts;
    record(10);
    const std::string key_a =
        measureCacheKey(config, "trace:file=" + path, opts);
    const std::string key_same =
        measureCacheKey(config, "trace:file=" + path, opts);
    record(20); // regenerate with a different stream
    const std::string key_b =
        measureCacheKey(config, "trace:file=" + path, opts);

    EXPECT_EQ(key_a, key_same);
    EXPECT_NE(key_a, key_b);
    std::filesystem::remove_all(dir);
}

TEST(TraceSpecText, ParsesTraceEntries)
{
    const CampaignSpec spec = parseCampaignSpec(
        "name = with-traces\n"
        "machine = small\n"
        "kernel = sum:n=4096\n"
        "trace = sum:n=4096\n"
        "trace = daxpy:n=2048\n"
        "variant = cold: protocol=cold cores=0\n");
    EXPECT_EQ(spec.traces().size(), 2u);
    EXPECT_EQ(spec.gridSize(), 3u); // (1 kernel + 2 traces) x 1 variant
}

TEST(TraceSpecTextDeath, TracedReplayIsRejected)
{
    CampaignSpec spec("bad");
    spec.addMachine(sim::MachineConfig::smallTestMachine());
    spec.addKernel("sum:n=1024");
    spec.addTrace("trace:file=whatever.rfltrace");
    roofline::MeasureOptions cold;
    cold.cores = {0};
    spec.addVariant("cold", cold);
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "trace of a trace replay");
}

} // namespace
