/** @file Tests for CampaignSpec building, parsing and validation. */

#include <gtest/gtest.h>

#include "campaign/spec.hh"
#include "support/logging.hh"

namespace
{

using namespace rfl::campaign;
using rfl::sim::MachineConfig;
using rfl::sim::MemPolicy;

TEST(CoreSet, ParseForms)
{
    EXPECT_EQ(parseCoreSet("0"), (std::vector<int>{0}));
    EXPECT_EQ(parseCoreSet("0,2,5"), (std::vector<int>{0, 2, 5}));
    EXPECT_EQ(parseCoreSet("0-3"), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(parseCoreSet("0-1,4-5"), (std::vector<int>{0, 1, 4, 5}));
    // Duplicates collapse, order canonicalizes.
    EXPECT_EQ(parseCoreSet("3,1,1,2"), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(formatCoreSet({0, 1, 2}), "0,1,2");
}

TEST(CoreSetDeath, Malformed)
{
    EXPECT_EXIT(parseCoreSet("banana"), ::testing::ExitedWithCode(1),
                "bad core");
    EXPECT_EXIT(parseCoreSet("3-1"), ::testing::ExitedWithCode(1),
                "range end");
}

TEST(RunOptions, CanonicalKeyCoversFields)
{
    RunOptions a;
    const std::string base = a.canonicalKey();

    RunOptions b = a;
    b.measure.protocol = rfl::roofline::CacheProtocol::Warm;
    EXPECT_NE(b.canonicalKey(), base);

    b = a;
    b.measure.cores = {0, 1};
    EXPECT_NE(b.canonicalKey(), base);

    b = a;
    b.measure.seed = 7;
    EXPECT_NE(b.canonicalKey(), base);

    b = a;
    b.memPolicy = MemPolicy::Interleave;
    EXPECT_NE(b.canonicalKey(), base);

    b = a;
    b.prefetchEnabled = false;
    EXPECT_NE(b.canonicalKey(), base);

    // Identical options produce identical keys.
    EXPECT_EQ(RunOptions{}.canonicalKey(), base);
}

TEST(CampaignSpec, BuilderChains)
{
    CampaignSpec spec("demo");
    spec.addMachine(MachineConfig::smallTestMachine())
        .addKernel("daxpy:n=256")
        .addKernel("sum:n=256")
        .addVariant("cold", rfl::roofline::MeasureOptions{});
    EXPECT_EQ(spec.name(), "demo");
    EXPECT_EQ(spec.machines().size(), 1u);
    EXPECT_EQ(spec.kernels().size(), 2u);
    EXPECT_EQ(spec.variants().size(), 1u);
    EXPECT_EQ(spec.gridSize(), 2u);
    spec.validate();
}

TEST(CampaignSpec, ParseText)
{
    const CampaignSpec spec = parseCampaignSpec(
        "# demo campaign\n"
        "name = parsed\n"
        "machine = small\n"
        "kernel = daxpy:n=256\n"
        "kernel = sum:n=256\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n"
        "variant = warm-2c: protocol=warm cores=0-1 numa=interleave "
        "prefetch=off\n");
    EXPECT_EQ(spec.name(), "parsed");
    EXPECT_EQ(spec.machines().size(), 1u);
    EXPECT_EQ(spec.kernels().size(), 2u);
    ASSERT_EQ(spec.variants().size(), 2u);

    const Variant &cold = spec.variants()[0];
    EXPECT_EQ(cold.label, "cold-1c");
    EXPECT_EQ(cold.opts.measure.protocol,
              rfl::roofline::CacheProtocol::Cold);
    EXPECT_EQ(cold.opts.measure.cores, (std::vector<int>{0}));
    EXPECT_EQ(cold.opts.measure.repetitions, 1);

    const Variant &warm = spec.variants()[1];
    EXPECT_EQ(warm.opts.measure.protocol,
              rfl::roofline::CacheProtocol::Warm);
    EXPECT_EQ(warm.opts.measure.cores, (std::vector<int>{0, 1}));
    EXPECT_EQ(warm.opts.memPolicy, MemPolicy::Interleave);
    EXPECT_FALSE(warm.opts.prefetchEnabled);
}

TEST(CampaignSpec, StableHashIsContentAddressed)
{
    const char *const text =
        "name = hash-test\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "phase = fft:n=1024 period=2048\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n";
    // Same content, same hash — including across parses (the service
    // dedups concurrent submissions by this).
    EXPECT_EQ(parseCampaignSpec(text).stableHash(),
              parseCampaignSpec(text).stableHash());

    // Every grid dimension moves the hash.
    const uint64_t base = parseCampaignSpec(text).stableHash();
    const char *const variants[] = {
        "name = other\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "phase = fft:n=1024 period=2048\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n",
        "name = hash-test\n"
        "machine = default\n"
        "kernel = daxpy:n=4096\n"
        "phase = fft:n=1024 period=2048\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n",
        "name = hash-test\n"
        "machine = small\n"
        "kernel = daxpy:n=8192\n"
        "phase = fft:n=1024 period=2048\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n",
        "name = hash-test\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "phase = fft:n=1024 period=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n",
        "name = hash-test\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "phase = fft:n=1024 period=2048\n"
        "variant = cold-1c: protocol=warm cores=0 reps=1\n",
    };
    for (const char *other : variants)
        EXPECT_NE(parseCampaignSpec(other).stableHash(), base)
            << other;
}

TEST(CampaignSpec, TimeoutParsesAndMovesTheHash)
{
    const char *const base =
        "name = timeout-test\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n";
    const CampaignSpec none = parseCampaignSpec(base);
    EXPECT_EQ(none.timeoutSeconds(), 0.0);

    const CampaignSpec bounded = parseCampaignSpec(
        std::string(base) + "timeout = 2.5\n");
    EXPECT_EQ(bounded.timeoutSeconds(), 2.5);

    // A ticket earned with a spent budget must not shadow a patient
    // resubmission: distinct budgets are distinct content.
    EXPECT_NE(bounded.stableHash(), none.stableHash());
    EXPECT_NE(bounded.stableHash(),
              parseCampaignSpec(std::string(base) + "timeout = 30\n")
                  .stableHash());
}

TEST(CampaignSpec, BackendKeyParsesAndDefaults)
{
    const char *base = "name = hw\n"
                       "machine = small\n"
                       "kernel = daxpy:n=4096\n"
                       "variant = cold-1c: protocol=cold cores=0 reps=1\n";
    // Default: sim only.
    const CampaignSpec plain = parseCampaignSpec(base);
    EXPECT_TRUE(plain.hasBackend("sim"));
    EXPECT_FALSE(plain.hasBackend("perf"));

    // The first explicit backend replaces the default; repeats append
    // and dedup.
    const CampaignSpec both = parseCampaignSpec(
        std::string(base) +
        "backend = perf\nbackend = sim\nbackend = sim\n");
    EXPECT_TRUE(both.hasBackend("sim"));
    EXPECT_TRUE(both.hasBackend("perf"));
    EXPECT_EQ(both.backends().size(), 2u);

    const CampaignSpec hwOnly =
        parseCampaignSpec(std::string(base) + "backend = perf\n");
    EXPECT_FALSE(hwOnly.hasBackend("sim"));
    EXPECT_TRUE(hwOnly.hasBackend("perf"));
}

TEST(CampaignSpec, BackendMovesTheHashOnlyWhenNonDefault)
{
    const char *base = "name = hw\n"
                       "machine = small\n"
                       "kernel = daxpy:n=4096\n"
                       "variant = cold-1c: protocol=cold cores=0 reps=1\n";
    const CampaignSpec plain = parseCampaignSpec(base);
    // `backend = sim` spelled out is the default: identical content,
    // identical hash — explicit spelling must not invalidate every
    // pre-existing ticket and cache entry.
    const CampaignSpec simExplicit =
        parseCampaignSpec(std::string(base) + "backend = sim\n");
    EXPECT_EQ(plain.stableHash(), simExplicit.stableHash());

    const CampaignSpec withPerf = parseCampaignSpec(
        std::string(base) + "backend = sim\nbackend = perf\n");
    EXPECT_NE(plain.stableHash(), withPerf.stableHash());
}

TEST(CampaignSpecDeath, BackendRejectsUnknownNames)
{
    CampaignSpec spec("bad");
    EXPECT_EXIT(spec.addBackend("fpga"), ::testing::ExitedWithCode(1),
                "sim|perf");
}

TEST(CampaignSpec, FatalThrowsModeTurnsParseErrorsIntoExceptions)
{
    // The daemon-mode contract: with setFatalThrows(true), a bad spec
    // throws FatalError (catchable per request) instead of exit(1).
    const bool prev = rfl::setFatalThrows(true);
    try {
        parseCampaignSpec("machine = warp-drive\n");
        rfl::setFatalThrows(prev);
        FAIL() << "bad spec did not throw in fatal-throws mode";
    } catch (const rfl::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("machine expects"),
                  std::string::npos);
    }
    rfl::setFatalThrows(prev);
}

TEST(CampaignSpecDeath, InvalidSpecs)
{
    CampaignSpec empty("empty");
    EXPECT_EXIT(empty.validate(), ::testing::ExitedWithCode(1),
                "no machines");

    // Core index beyond the machine.
    CampaignSpec bad("bad");
    bad.addMachine(MachineConfig::smallTestMachine()); // 2 cores
    bad.addKernel("sum:n=256");
    rfl::roofline::MeasureOptions opts;
    opts.cores = {0, 7};
    bad.addVariant("too-wide", opts);
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "uses core 7");

    EXPECT_EXIT(parseCampaignSpec("machine = warp-drive\n"),
                ::testing::ExitedWithCode(1), "machine expects");
    EXPECT_EXIT(parseCampaignSpec("variant = nolabel\n"),
                ::testing::ExitedWithCode(1), "variant expects");
    EXPECT_EXIT(
        parseCampaignSpec("variant = v: protocol=lukewarm\n"),
        ::testing::ExitedWithCode(1), "cold|warm");
}

} // namespace
