/**
 * @file
 * Campaign phase-sample job tests.
 *
 * A `phase = <kernel spec> period=N` campaign entry expands into one
 * phase-sample job per (machine, variant), depending on the scenario's
 * ceiling job. The job's PhaseTrajectory must be internally consistent
 * (interval sums equal totals), cache cleanly (round-trip through the
 * JSONL payload, answered from cache on re-run), and flow into the
 * analysis document (analyzeCampaign picks up scenarios, kernel rows
 * and phase rows from one run).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "analysis/analysis.hh"
#include "campaign/executor.hh"
#include "campaign/job_graph.hh"
#include "campaign/result_cache.hh"
#include "campaign/serialize.hh"
#include "campaign/spec.hh"

namespace
{

using namespace rfl;
using namespace rfl::campaign;

CampaignSpec
phaseSpec()
{
    CampaignSpec spec("phase-jobs");
    spec.addMachine("small", sim::MachineConfig::smallTestMachine());
    spec.addKernel("daxpy:n=2048");
    spec.addPhase("daxpy:n=2048", 256);
    roofline::MeasureOptions cold;
    cold.repetitions = 1;
    cold.cores = {0};
    spec.addVariant("cold-1c", cold);
    roofline::MeasureOptions warm = cold;
    warm.protocol = roofline::CacheProtocol::Warm;
    spec.addVariant("warm-1c", warm);
    return spec;
}

TEST(PhaseJobGraph, ExpandsOnePhaseJobPerVariant)
{
    const CampaignSpec spec = phaseSpec();
    EXPECT_EQ(spec.gridSize(), 4u); // (1 kernel + 1 phase) x 2 variants
    const JobGraph graph = JobGraph::expand(spec);

    size_t phase_jobs = 0;
    for (const Job &job : graph.jobs()) {
        if (job.kind != JobKind::PhaseSample)
            continue;
        ++phase_jobs;
        ASSERT_EQ(job.deps.size(), 1u) << job.describe(spec);
        EXPECT_EQ(graph.jobs()[job.deps[0]].kind, JobKind::Ceiling);
        EXPECT_EQ(graph.ceilingJobFor(job), job.deps[0]);
        EXPECT_EQ(job.cacheKey.rfind("phase|", 0), 0u);
        EXPECT_NE(job.cacheKey.find("period=256"), std::string::npos);
        EXPECT_NE(job.describe(spec).find("phase=daxpy:n=2048"),
                  std::string::npos);
    }
    EXPECT_EQ(phase_jobs, 2u);
}

TEST(PhaseJobs, RunProducesConsistentTrajectories)
{
    const CampaignSpec spec = phaseSpec();
    CampaignExecutor exec;
    const CampaignRun run = exec.run(spec);

    for (size_t vi = 0; vi < spec.variants().size(); ++vi) {
        const analysis::PhaseTrajectory &traj =
            run.phaseTrajectoryFor(0, 0, vi);
        EXPECT_EQ(traj.kernel, "daxpy");
        EXPECT_EQ(traj.period, 256u);
        ASSERT_FALSE(traj.points.empty());
        double flops = 0, bytes = 0;
        for (const analysis::PhasePoint &p : traj.points) {
            flops += p.flops;
            bytes += p.trafficBytes;
        }
        EXPECT_EQ(flops, traj.totalFlops);
        EXPECT_EQ(bytes, traj.totalTrafficBytes);
        EXPECT_GT(traj.totalFlops, 0.0);
    }
    // Cold streams, warm stays resident: the protocols differ in Q.
    EXPECT_GT(run.phaseTrajectoryFor(0, 0, 0).totalTrafficBytes,
              run.phaseTrajectoryFor(0, 0, 1).totalTrafficBytes);
}

TEST(PhaseJobs, PayloadRoundTripsAndCacheAnswersReruns)
{
    const CampaignSpec spec = phaseSpec();
    ResultCache cache;
    ExecutorOptions opts;
    opts.cache = &cache;

    const CampaignRun first = CampaignExecutor(opts).run(spec);
    EXPECT_EQ(first.cacheHits, 0u);

    // Round-trip the trajectory payload explicitly.
    const analysis::PhaseTrajectory &traj =
        first.phaseTrajectoryFor(0, 0, 0);
    const analysis::PhaseTrajectory back =
        decodePhaseTrajectory(encodePhaseTrajectory(traj));
    EXPECT_EQ(back.kernel, traj.kernel);
    EXPECT_EQ(back.period, traj.period);
    ASSERT_EQ(back.points.size(), traj.points.size());
    for (size_t i = 0; i < back.points.size(); ++i) {
        EXPECT_EQ(back.points[i].flops, traj.points[i].flops);
        EXPECT_EQ(back.points[i].trafficBytes,
                  traj.points[i].trafficBytes);
        EXPECT_EQ(back.points[i].seconds, traj.points[i].seconds);
        EXPECT_EQ(back.points[i].oi, traj.points[i].oi) << i;
        EXPECT_EQ(back.points[i].perf, traj.points[i].perf) << i;
    }

    // Re-run: every job (phase jobs included) answered from cache,
    // with identical trajectories.
    const CampaignRun second = CampaignExecutor(opts).run(spec);
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.cacheHits, second.jobs.size());
    const analysis::PhaseTrajectory &cached =
        second.phaseTrajectoryFor(0, 0, 0);
    EXPECT_EQ(cached.points.size(), traj.points.size());
    EXPECT_EQ(cached.totalFlops, traj.totalFlops);
    EXPECT_EQ(cached.totalSeconds, traj.totalSeconds);
}

TEST(PhaseJobs, AnalyzeCampaignIngestsEverything)
{
    const CampaignSpec spec = phaseSpec();
    const CampaignRun run = CampaignExecutor().run(spec);
    const analysis::CampaignAnalysis doc =
        analysis::analyzeCampaign(run);

    EXPECT_EQ(doc.campaign, "phase-jobs");
    EXPECT_EQ(doc.scenarios.size(), 2u); // one per variant
    EXPECT_EQ(doc.kernels.size(), 2u);   // 1 kernel x 2 variants
    EXPECT_EQ(doc.phases.size(), 2u);    // 1 phase x 2 variants
    ASSERT_NE(doc.findScenario("small", "cold-1c"), nullptr);
    EXPECT_GT(doc.findScenario("small", "cold-1c")
                  ->model.peakCompute(),
              0.0);
    for (const analysis::KernelRow &r : doc.kernels)
        EXPECT_GT(r.metrics.attainable, 0.0);
    for (const analysis::PhaseRow &r : doc.phases)
        EXPECT_FALSE(r.trajectory.points.empty());
}

TEST(PhaseSpec, ParserAcceptsPhaseEntries)
{
    const CampaignSpec spec = parseCampaignSpec(
        "name = p\n"
        "machine = small\n"
        "kernel = sum:n=1024\n"
        "phase = sum:n=1024 period=123\n"
        "phase = daxpy:n=1024\n" // default period
        "variant = cold: protocol=cold cores=0 reps=1\n");
    ASSERT_EQ(spec.phases().size(), 2u);
    EXPECT_EQ(spec.phases()[0].spec, "sum:n=1024");
    EXPECT_EQ(spec.phases()[0].period, 123u);
    EXPECT_EQ(spec.phases()[1].period, 8192u);
}

} // namespace
