/**
 * @file
 * Campaign executor acceptance tests (ISSUE 1 criteria): deterministic
 * results independent of host thread count, 100% cache hits on an
 * identical re-run, and ceiling jobs completing before their sweeps.
 */

#include <algorithm>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/executor.hh"
#include "campaign/sink.hh"
#include "support/cancel.hh"

namespace
{

using namespace rfl::campaign;
using rfl::sim::MachineConfig;

CampaignSpec
smallCampaign()
{
    CampaignSpec spec("exec_test");
    spec.addMachine("small", MachineConfig::smallTestMachine());
    spec.addKernels({"daxpy:n=256", "sum:n=512", "dot:n=256"});

    rfl::roofline::MeasureOptions cold;
    cold.repetitions = 1;
    spec.addVariant("cold-1c", cold);

    rfl::roofline::MeasureOptions warm;
    warm.protocol = rfl::roofline::CacheProtocol::Warm;
    warm.repetitions = 1;
    warm.cores = {0, 1};
    spec.addVariant("warm-2c", warm);
    return spec;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(CampaignExecutor, ResultsIndependentOfThreadCount)
{
    const CampaignSpec spec = smallCampaign();

    ExecutorOptions serial;
    serial.threads = 1;
    const CampaignRun run1 = CampaignExecutor(serial).run(spec);

    ExecutorOptions parallel;
    parallel.threads = 4;
    const CampaignRun runN = CampaignExecutor(parallel).run(spec);

    EXPECT_EQ(run1.threadsUsed, 1);
    EXPECT_EQ(runN.threadsUsed, 4);
    EXPECT_EQ(run1.jobs.size(), runN.jobs.size());

    // Byte-identical aggregated CSV.
    const std::string dir1 = ::testing::TempDir() + "rfl_exec_1t";
    const std::string dirN = ::testing::TempDir() + "rfl_exec_4t";
    const std::string csv1 = writeCampaignCsv(run1, dir1, "out");
    const std::string csvN = writeCampaignCsv(runN, dirN, "out");
    const std::string text1 = readFile(csv1);
    EXPECT_FALSE(text1.empty());
    EXPECT_EQ(text1, readFile(csvN));

    // Models agree too.
    for (size_t vi = 0; vi < spec.variants().size(); ++vi) {
        EXPECT_EQ(run1.modelFor(0, vi).peakCompute(),
                  runN.modelFor(0, vi).peakCompute());
        EXPECT_EQ(run1.modelFor(0, vi).peakBandwidth(),
                  runN.modelFor(0, vi).peakBandwidth());
    }
}

TEST(CampaignExecutor, SecondRunIsAllCacheHits)
{
    const CampaignSpec spec = smallCampaign();
    const std::string path =
        ::testing::TempDir() + "rfl_exec_cache.jsonl";
    std::remove(path.c_str());

    // First run: everything simulated, everything stored.
    {
        ResultCache cache(path);
        ExecutorOptions opts;
        opts.threads = 2;
        opts.cache = &cache;
        const CampaignRun run = CampaignExecutor(opts).run(spec);
        EXPECT_EQ(run.simulated, run.jobs.size());
        EXPECT_EQ(run.cacheHits, 0u);
        EXPECT_EQ(cache.stats().stores, run.jobs.size());
    }

    // Second run against the same spill file: zero simulation.
    ResultCache cache(path);
    EXPECT_GT(cache.stats().preloaded, 0u);
    ExecutorOptions opts;
    opts.threads = 2;
    opts.cache = &cache;
    const CampaignRun rerun = CampaignExecutor(opts).run(spec);
    EXPECT_EQ(rerun.simulated, 0u);
    EXPECT_EQ(rerun.cacheHits, rerun.jobs.size());

    // And the cached results match a cache-less run byte for byte.
    const CampaignRun fresh = CampaignExecutor(ExecutorOptions{}).run(spec);
    const std::string dirA = ::testing::TempDir() + "rfl_exec_cached";
    const std::string dirB = ::testing::TempDir() + "rfl_exec_fresh";
    EXPECT_EQ(readFile(writeCampaignCsv(rerun, dirA, "out")),
              readFile(writeCampaignCsv(fresh, dirB, "out")));
    std::remove(path.c_str());
}

TEST(CampaignExecutor, ChangingTheSpecOnlyComputesTheDelta)
{
    const std::string path =
        ::testing::TempDir() + "rfl_exec_delta.jsonl";
    std::remove(path.c_str());

    ResultCache cache(path);
    ExecutorOptions opts;
    opts.threads = 2;
    opts.cache = &cache;

    CampaignExecutor(opts).run(smallCampaign());

    // Same campaign plus one new kernel: exactly the two new measure
    // jobs (one per variant) simulate; everything else hits.
    CampaignSpec extended = smallCampaign();
    extended.addKernel("triad:n=256");
    const CampaignRun run = CampaignExecutor(opts).run(extended);
    EXPECT_EQ(run.simulated, 2u);
    EXPECT_EQ(run.cacheHits, run.jobs.size() - 2u);
    std::remove(path.c_str());
}

TEST(CampaignExecutor, CeilingJobsCompleteBeforeTheirSweeps)
{
    const CampaignSpec spec = smallCampaign();
    ExecutorOptions opts;
    opts.threads = 4;
    const CampaignRun run = CampaignExecutor(opts).run(spec);

    // completionOrder records the actual finish sequence; every measure
    // job's ceiling dependency must appear earlier.
    std::vector<size_t> finishedAt(run.jobs.size());
    for (size_t pos = 0; pos < run.completionOrder.size(); ++pos)
        finishedAt[run.completionOrder[pos]] = pos;

    for (const Job &job : run.jobs) {
        for (size_t dep : job.deps) {
            EXPECT_LT(finishedAt[dep], finishedAt[job.id])
                << job.describe(run.spec) << " finished before its "
                << run.jobs[dep].describe(run.spec);
        }
    }

    // Each ceiling produced a usable model with compute + bandwidth roofs.
    for (const Job &job : run.jobs) {
        if (job.kind != JobKind::Ceiling)
            continue;
        const rfl::roofline::RooflineModel &model =
            run.results[job.id].model;
        EXPECT_GT(model.peakCompute(), 0.0);
        EXPECT_GT(model.peakBandwidth(), 0.0);
    }
}

TEST(CampaignExecutor, ExpiredRunBudgetThrowsTimedOut)
{
    // A spec-level `timeout =` is a whole-run wall budget; one that is
    // effectively already spent must surface as TimedOutError from the
    // first drain check, not hang or return a partial grid.
    CampaignSpec spec = smallCampaign();
    spec.setTimeout(1e-9);
    ExecutorOptions opts;
    opts.threads = 2;
    EXPECT_THROW(CampaignExecutor(opts).run(spec), rfl::TimedOutError);
}

TEST(CampaignExecutor, ExpiredJobBudgetThrowsTimedOut)
{
    // Service-side per-job budget (ExecutorOptions::jobTimeoutSeconds)
    // cancels the same way without any spec cooperation.
    const CampaignSpec spec = smallCampaign();
    ExecutorOptions opts;
    opts.threads = 2;
    opts.jobTimeoutSeconds = 1e-9;
    EXPECT_THROW(CampaignExecutor(opts).run(spec), rfl::TimedOutError);
}

TEST(CampaignExecutor, GenerousBudgetsDoNotPerturbTheRun)
{
    CampaignSpec spec = smallCampaign();
    spec.setTimeout(3600.0);
    ExecutorOptions opts;
    opts.jobTimeoutSeconds = 3600.0;
    const CampaignRun run = CampaignExecutor(opts).run(spec);
    EXPECT_EQ(run.measurements().size(), spec.gridSize());
}

TEST(CampaignExecutor, NativeJobsRunAfterThePoolDrains)
{
    // NativeMeasure jobs observe the physical host, so the executor
    // parks them until every pool job has finished and then runs them
    // serially on a quiesced machine: in completionOrder every native
    // job must follow every sim job. Holds whether or not this host
    // grants perf_event_open (the placeholder path schedules the same).
    CampaignSpec spec = smallCampaign();
    spec.addBackend("sim").addBackend("perf");
    ExecutorOptions opts;
    opts.threads = 4;
    const CampaignRun run = CampaignExecutor(opts).run(spec);

    ASSERT_EQ(run.completionOrder.size(), run.jobs.size());
    size_t lastSim = 0;
    size_t firstNative = run.completionOrder.size();
    size_t natives = 0;
    for (size_t pos = 0; pos < run.completionOrder.size(); ++pos) {
        const Job &job = run.jobs[run.completionOrder[pos]];
        if (job.kind == JobKind::NativeMeasure) {
            ++natives;
            firstNative = std::min(firstNative, pos);
        } else {
            lastSim = std::max(lastSim, pos);
        }
    }
    ASSERT_GT(natives, 0u);
    EXPECT_LT(lastSim, firstNative);
}

TEST(CampaignExecutor, GridLookupsWork)
{
    const CampaignSpec spec = smallCampaign();
    const CampaignRun run = CampaignExecutor(ExecutorOptions{}).run(spec);

    const rfl::roofline::Measurement &m = run.measurementFor(0, 0, 0);
    EXPECT_EQ(m.kernel, "daxpy");
    EXPECT_EQ(m.protocol, "cold");
    EXPECT_EQ(m.cores, 1);

    const rfl::roofline::Measurement &w = run.measurementFor(0, 1, 1);
    EXPECT_EQ(w.kernel, "sum");
    EXPECT_EQ(w.protocol, "warm");
    EXPECT_EQ(w.cores, 2);

    EXPECT_EQ(run.measurements().size(), spec.gridSize());
}

} // namespace
