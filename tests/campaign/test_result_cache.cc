/** @file Tests for the content-addressed ResultCache and serialization. */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/result_cache.hh"
#include "campaign/serialize.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace
{

using namespace rfl::campaign;

rfl::roofline::Measurement
sampleMeasurement()
{
    rfl::roofline::Measurement m;
    m.kernel = "daxpy";
    m.sizeLabel = "n=256";
    m.protocol = "cold";
    m.cores = 2;
    m.lanes = 4;
    m.flops = 512.0;
    m.trafficBytes = 6144.0;
    m.seconds = 1.25e-7;
    m.expectedFlops = 512.0;
    m.expectedTrafficBytes = std::nan(""); // no analytic traffic model
    m.flopsSample.add(512.0);
    m.flopsSample.add(512.0);
    m.secondsSample.add(1.25e-7);
    return m;
}

TEST(Serialize, MeasurementRoundTrip)
{
    const rfl::roofline::Measurement m = sampleMeasurement();
    const rfl::roofline::Measurement back =
        decodeMeasurement(encodeMeasurement(m));
    EXPECT_EQ(back.kernel, m.kernel);
    EXPECT_EQ(back.sizeLabel, m.sizeLabel);
    EXPECT_EQ(back.protocol, m.protocol);
    EXPECT_EQ(back.cores, m.cores);
    EXPECT_EQ(back.lanes, m.lanes);
    EXPECT_EQ(back.flops, m.flops); // bit-exact, not just near
    EXPECT_EQ(back.trafficBytes, m.trafficBytes);
    EXPECT_EQ(back.seconds, m.seconds);
    EXPECT_TRUE(std::isnan(back.expectedTrafficBytes));
    EXPECT_EQ(back.flopsSample.values(), m.flopsSample.values());
    EXPECT_EQ(back.secondsSample.values(), m.secondsSample.values());
}

TEST(Serialize, ModelRoundTrip)
{
    rfl::roofline::RooflineModel model;
    model.addComputeCeiling("peak avx fma", 4.0e10);
    model.addComputeCeiling("peak scalar", 5.0e9);
    model.addBandwidthCeiling("best streaming", 3.84e10);
    const rfl::roofline::RooflineModel back =
        decodeModel(encodeModel(model));
    EXPECT_EQ(back.computeCeilings().size(), 2u);
    EXPECT_EQ(back.bandwidthCeilings().size(), 1u);
    EXPECT_EQ(back.computeCeiling("peak avx fma"), 4.0e10);
    EXPECT_EQ(back.bandwidthCeiling("best streaming"), 3.84e10);
}

TEST(Serialize, EncodingIsStable)
{
    // Encoding the same measurement twice gives identical text (the
    // cache depends on canonical payloads).
    const rfl::roofline::Measurement m = sampleMeasurement();
    EXPECT_EQ(encodeMeasurement(m), encodeMeasurement(m));
    // And decode(encode(x)) re-encodes identically (spill reload path).
    EXPECT_EQ(encodeMeasurement(decodeMeasurement(encodeMeasurement(m))),
              encodeMeasurement(m));
}

TEST(ResultCache, MemoryHitsAndMisses)
{
    ResultCache cache;
    std::string payload;
    EXPECT_FALSE(cache.lookup("k1", &payload));
    cache.store("k1", "{\"v\":1}");
    EXPECT_TRUE(cache.lookup("k1", &payload));
    EXPECT_EQ(payload, "{\"v\":1}");
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, SpillPersistsAcrossInstances)
{
    const std::string path =
        ::testing::TempDir() + "rfl_cache_spill_test.jsonl";
    std::remove(path.c_str());

    const std::string payload = encodeMeasurement(sampleMeasurement());
    {
        ResultCache cache(path);
        EXPECT_EQ(cache.stats().preloaded, 0u);
        cache.store("measure|abc|daxpy:n=256|protocol=cold", payload);
        cache.store("ceiling|abc|cores=0",
                    "{\"compute\":[],\"bandwidth\":[]}");
    }
    {
        ResultCache cache(path);
        EXPECT_EQ(cache.stats().preloaded, 2u);
        std::string got;
        ASSERT_TRUE(cache.lookup("measure|abc|daxpy:n=256|protocol=cold",
                                 &got));
        EXPECT_EQ(got, payload);
    }
    std::remove(path.c_str());
}

TEST(ResultCache, CorruptSpillLinesAreQuarantinedNotFatal)
{
    const std::string path =
        ::testing::TempDir() + "rfl_cache_corrupt_test.jsonl";
    std::remove(path.c_str());
    std::remove((path + ".quarantine").c_str());
    {
        ResultCache cache(path);
        cache.store("good", "{\"v\":1}");
    }
    {
        // Simulate a crash-truncated append plus stray garbage.
        std::ofstream out(path, std::ios::app);
        out << "GARBAGE NOT JSON\n";
        out << "{\"key\":\"trunc\",\"payload\":{\"v\":\n";
    }
    ResultCache cache(path); // must not exit
    EXPECT_EQ(cache.stats().preloaded, 1u);
    EXPECT_EQ(cache.stats().quarantined, 2u);
    std::string got;
    EXPECT_TRUE(cache.lookup("good", &got));
    EXPECT_FALSE(cache.lookup("trunc", &got));

    // The bad lines are preserved verbatim for a post-mortem, not
    // silently dropped.
    std::ifstream q(path + ".quarantine");
    ASSERT_TRUE(q.good());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(q, line))
        if (!line.empty())
            lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "GARBAGE NOT JSON");

    std::remove(path.c_str());
    std::remove((path + ".quarantine").c_str());
}

TEST(ResultCache, FailedCompactionLeavesSpillIntact)
{
    // Crash-only discipline: when the publish step of a compaction
    // fails (injected rename fault), the original spill must still
    // reload fully — no torn or half-written cache file.
    const std::string path =
        ::testing::TempDir() + "rfl_cache_crash_test.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        cache.store("measure|live|k|o", "{\"v\":1}");
        cache.store("measure|dead|k|o", "{\"v\":2}");

        ASSERT_TRUE(rfl::failpoint::arm("cache.compact.rename",
                                        "error"));
        const bool wasThrowing = rfl::setFatalThrows(true);
        EXPECT_THROW(cache.compact({"live"}), rfl::FatalError);
        rfl::setFatalThrows(wasThrowing);
        rfl::failpoint::disarmAll();
    }
    // The pre-compaction file is untouched: both entries reload.
    ResultCache reload(path);
    EXPECT_EQ(reload.stats().preloaded, 2u);
    std::string got;
    EXPECT_TRUE(reload.lookup("measure|dead|k|o", &got));
    EXPECT_EQ(got, "{\"v\":2}");
    std::remove(path.c_str());
    std::remove((path + ".compact.tmp").c_str());
}

TEST(ResultCache, TransientAppendFaultIsRetried)
{
    // One injected append failure costs a backoff, not the store:
    // the retry layer re-attempts and the entry lands on disk.
    const std::string path =
        ::testing::TempDir() + "rfl_cache_retry_test.jsonl";
    std::remove(path.c_str());
    ASSERT_TRUE(
        rfl::failpoint::arm("cache.spill.append", "error:count=1"));
    {
        ResultCache cache(path);
        cache.store("k", "{\"v\":1}");
    }
    rfl::failpoint::disarmAll();
    ResultCache reload(path);
    EXPECT_EQ(reload.stats().preloaded, 1u);
    std::string got;
    EXPECT_TRUE(reload.lookup("k", &got));
    std::remove(path.c_str());
}

TEST(ResultCache, LaterSpillLinesWin)
{
    const std::string path =
        ::testing::TempDir() + "rfl_cache_dup_test.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        cache.store("k", "{\"v\":1}");
        cache.store("k", "{\"v\":2}"); // append-only update
    }
    {
        ResultCache cache(path);
        std::string got;
        ASSERT_TRUE(cache.lookup("k", &got));
        EXPECT_EQ(got, "{\"v\":2}");
    }
    std::remove(path.c_str());
}

TEST(ResultCache, KeyConfigHashExtraction)
{
    EXPECT_EQ(cacheKeyConfigHash("measure|abc123|daxpy:n=256|opts"),
              "abc123");
    EXPECT_EQ(cacheKeyConfigHash("ceiling|ffff|cores=0"), "ffff");
    EXPECT_EQ(cacheKeyConfigHash("no-separators"), "");
    EXPECT_EQ(cacheKeyConfigHash("one|field"), "");
}

TEST(ResultCache, CompactDropsDeadConfigs)
{
    const std::string path =
        ::testing::TempDir() + "rfl_cache_gc_test.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        cache.store("measure|live|daxpy:n=256|o", "{\"v\":1}");
        cache.store("ceiling|live|cores=0", "{\"v\":2}");
        cache.store("measure|dead|daxpy:n=256|o", "{\"v\":3}");
        cache.store("phase|dead|fft:n=64|period=8|o", "{\"v\":4}");

        EXPECT_EQ(cache.compact({"live"}), 2u);
        EXPECT_EQ(cache.size(), 2u);
        std::string got;
        EXPECT_TRUE(cache.lookup("ceiling|live|cores=0", &got));
        EXPECT_FALSE(cache.lookup("measure|dead|daxpy:n=256|o", &got));
    }
    {
        // The rewritten spill must reload to exactly the survivors.
        ResultCache cache(path);
        EXPECT_EQ(cache.stats().preloaded, 2u);
        std::string got;
        EXPECT_TRUE(cache.lookup("measure|live|daxpy:n=256|o", &got));
        EXPECT_EQ(got, "{\"v\":1}");
        EXPECT_FALSE(cache.lookup("phase|dead|fft:n=64|period=8|o",
                                  &got));
    }
    std::remove(path.c_str());
}

TEST(ResultCache, CompactCollapsesDuplicateSpillLines)
{
    const std::string path =
        ::testing::TempDir() + "rfl_cache_gc_dup_test.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        for (int i = 0; i < 10; ++i)
            cache.store("measure|m|k|o",
                        "{\"v\":" + std::to_string(i) + "}");
        // Ten appended lines, one live entry; compaction shrinks the
        // file even when nothing is dropped.
        EXPECT_EQ(cache.compact({"m"}), 0u);
    }
    std::ifstream in(path);
    int lines = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, 1);
    ResultCache reload(path);
    std::string got;
    EXPECT_TRUE(reload.lookup("measure|m|k|o", &got));
    EXPECT_EQ(got, "{\"v\":9}");
    std::remove(path.c_str());
}

TEST(ResultCache, CompactKeysWithoutConfigHashSurvive)
{
    ResultCache cache;
    cache.store("legacy-key-no-pipes", "{\"v\":1}");
    cache.store("measure|dead|k|o", "{\"v\":2}");
    EXPECT_EQ(cache.compact({}), 1u);
    std::string got;
    EXPECT_TRUE(cache.lookup("legacy-key-no-pipes", &got));
}

} // namespace
