/**
 * @file
 * End-to-end HTTP tests: real sockets against a real server. Covers
 * the protocol surface (keep-alive, chunked transfer, error codes),
 * the API contract, rate limiting, and the acceptance requirement
 * that artifact endpoints byte-match the offline CLI artifact files
 * for the same spec.
 */

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "campaign/executor.hh"
#include "campaign/serialize.hh"
#include "service/api.hh"
#include "service/http_client.hh"
#include "service/http_server.hh"
#include "service/job_queue.hh"
#include "service/session.hh"

namespace
{

using namespace rfl;
using namespace rfl::service;

const char *const kSpec =
    "name = http-test\n"
    "machine = small\n"
    "kernel = daxpy:n=4096\n"
    "kernel = sum:n=4096\n"
    "phase = fft:n=1024 period=1024\n"
    "variant = cold-1c: protocol=cold cores=0 reps=1\n"
    "variant = warm-1c: protocol=warm cores=0 reps=2\n";

/** One full service stack on an ephemeral port. */
class HttpServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        JobQueueOptions qopts;
        qopts.workers = 1;
        qopts.exec.threads = 2;
        queue_ = std::make_unique<JobQueue>(qopts);
        sessions_ = std::make_unique<SessionTable>(SessionOptions{
            /*ratePerSec=*/0.0, /*burst=*/32.0,
            /*logRequests=*/false});
        api_ = std::make_unique<ApiHandler>(*queue_, *sessions_);

        HttpServerOptions hopts;
        hopts.port = 0;
        hopts.workers = 8;
        server_ = std::make_unique<HttpServer>(hopts);
        server_->start([this](const HttpRequest &req) {
            return api_->handle(req);
        });
        api_->setServerStats([this] { return server_->stats(); });
    }

    void
    TearDown() override
    {
        server_->stop();
        queue_->stop();
    }

    /** Submit @p spec and poll over HTTP until done; @return id. */
    std::string
    submitAndWait(HttpClient &client, const std::string &spec)
    {
        ClientResponse resp;
        EXPECT_TRUE(client.request("POST", "/v1/campaigns", &resp,
                                   spec));
        EXPECT_TRUE(resp.status == 202 || resp.status == 200)
            << resp.status << " " << resp.body;
        const std::string id = jsonField(resp.body, "id");
        EXPECT_EQ(id.size(), 16u) << resp.body;
        for (int i = 0; i < 600; ++i) {
            EXPECT_TRUE(client.request(
                "GET", "/v1/campaigns/" + id, &resp));
            const std::string state = jsonField(resp.body, "state");
            if (state == "done")
                return id;
            if (state == "failed") {
                ADD_FAILURE() << "campaign failed: " << resp.body;
                return id;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        ADD_FAILURE() << "campaign did not finish";
        return id;
    }

    /** Crude extractor for top-level string members of flat JSON. */
    static std::string
    jsonField(const std::string &body, const std::string &key)
    {
        const std::string needle = "\"" + key + "\":\"";
        const size_t at = body.find(needle);
        if (at == std::string::npos)
            return "";
        const size_t start = at + needle.size();
        const size_t end = body.find('"', start);
        return body.substr(start, end - start);
    }

    std::unique_ptr<JobQueue> queue_;
    std::unique_ptr<SessionTable> sessions_;
    std::unique_ptr<ApiHandler> api_;
    std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServiceTest, HealthzAndErrors)
{
    HttpClient client("127.0.0.1", server_->port());
    ClientResponse resp;

    ASSERT_TRUE(client.request("GET", "/healthz", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);

    ASSERT_TRUE(client.request("GET", "/no/such/route", &resp));
    EXPECT_EQ(resp.status, 404);

    ASSERT_TRUE(client.request("GET", "/v1/campaigns", &resp));
    EXPECT_EQ(resp.status, 405) << "submission is POST-only";

    ASSERT_TRUE(client.request("POST", "/v1/campaigns", &resp,
                               "machine = small\n"));
    EXPECT_EQ(resp.status, 400) << "invalid spec must answer 400";

    ASSERT_TRUE(client.request("GET",
                               "/v1/campaigns/0123456789abcdef",
                               &resp));
    EXPECT_EQ(resp.status, 404);
}

TEST_F(HttpServiceTest, KeepAliveServesManyRequestsPerConnection)
{
    HttpClient client("127.0.0.1", server_->port());
    ClientResponse resp;
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(client.request("GET", "/healthz", &resp));
        ASSERT_EQ(resp.status, 200);
    }
    const HttpServerStats stats = server_->stats();
    EXPECT_EQ(stats.connectionsAccepted, 1u)
        << "keep-alive must reuse the one connection";
    EXPECT_EQ(stats.requestsServed, 20u);
}

TEST_F(HttpServiceTest, JsonEnvelopeSubmissionWorks)
{
    HttpClient client("127.0.0.1", server_->port());
    ClientResponse resp;

    // {"spec": "..."} with escaped newlines.
    campaign::Json envelope = campaign::Json::makeObject();
    envelope.set("spec", campaign::Json::makeString(
                             "name = http-envelope\n"
                             "machine = small\n"
                             "kernel = daxpy:n=4096\n"
                             "variant = cold-1c: protocol=cold "
                             "cores=0 reps=1\n"));
    ASSERT_TRUE(client.request("POST", "/v1/campaigns", &resp,
                               envelope.dump(), "application/json"));
    EXPECT_EQ(resp.status, 202) << resp.body;

    ASSERT_TRUE(client.request("POST", "/v1/campaigns", &resp,
                               "{\"nospec\":1}",
                               "application/json"));
    EXPECT_EQ(resp.status, 400);
}

TEST_F(HttpServiceTest, ArtifactEndpointsByteMatchOfflineCli)
{
    HttpClient client("127.0.0.1", server_->port());
    const std::string id = submitAndWait(client, kSpec);

    // Offline equivalent: same spec through the same executor path
    // the CLI uses, artifacts written to disk.
    const std::string dir =
        ::testing::TempDir() + "rfl_http_offline_report";
    const campaign::CampaignSpec spec =
        campaign::parseCampaignSpec(kSpec);
    const campaign::CampaignRun run =
        campaign::CampaignExecutor(campaign::ExecutorOptions{})
            .run(spec);
    const analysis::CampaignAnalysis doc =
        analysis::analyzeCampaign(run);
    const analysis::ReportPaths paths =
        analysis::writeAnalysisReport(doc, dir, spec.name());

    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };

    ClientResponse resp;
    ASSERT_TRUE(client.request(
        "GET", "/v1/campaigns/" + id + "/analysis", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, slurp(paths.json))
        << "served analysis.json differs from the CLI file";

    ASSERT_TRUE(client.request(
        "GET", "/v1/campaigns/" + id + "/report.html", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.headers["transfer-encoding"], "chunked")
        << "artifacts stream chunked";
    EXPECT_EQ(resp.body, slurp(paths.html))
        << "served report.html differs from the CLI file";

    ASSERT_EQ(paths.svgs.size(), 2u); // two scenarios
    for (size_t i = 0; i < paths.svgs.size(); ++i) {
        ASSERT_TRUE(client.request(
            "GET",
            "/v1/campaigns/" + id +
                "/roofline.svg?scenario=" + std::to_string(i),
            &resp));
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, slurp(paths.svgs[i]))
            << "served SVG " << i << " differs from the CLI file";
    }

    // Out-of-range scenario and premature artifacts answer cleanly.
    ASSERT_TRUE(client.request(
        "GET", "/v1/campaigns/" + id + "/roofline.svg?scenario=9",
        &resp));
    EXPECT_EQ(resp.status, 404);
}

TEST_F(HttpServiceTest, NotReadyArtifactsAnswer409)
{
    HttpClient client("127.0.0.1", server_->port());
    ClientResponse resp;
    // Big enough that the analysis fetch lands before completion.
    ASSERT_TRUE(client.request(
        "POST", "/v1/campaigns", &resp,
        "name = http-slow\n"
        "machine = default\n"
        "kernel = triad:n=2097152\n"
        "variant = warm-1c: protocol=warm cores=0 reps=3\n"));
    ASSERT_EQ(resp.status, 202) << resp.body;
    const std::string id = jsonField(resp.body, "id");

    ASSERT_TRUE(client.request(
        "GET", "/v1/campaigns/" + id + "/analysis", &resp));
    if (resp.status != 200) { // finished-already is legal, just rare
        EXPECT_EQ(resp.status, 409);
        EXPECT_NE(resp.body.find("not finished"), std::string::npos);
    }
    queue_->waitFor(id, 120.0);
}

TEST(HttpServiceRateLimit, OverRateClientsGet429ButHealthzPasses)
{
    JobQueueOptions qopts;
    qopts.workers = 1;
    JobQueue queue(qopts);
    SessionTable sessions(SessionOptions{/*ratePerSec=*/0.001,
                                         /*burst=*/2.0,
                                         /*logRequests=*/false});
    ApiHandler api(queue, sessions);

    HttpServerOptions hopts;
    hopts.port = 0;
    hopts.workers = 2;
    HttpServer server(hopts);
    server.start(
        [&api](const HttpRequest &req) { return api.handle(req); });

    HttpClient client("127.0.0.1", server.port());
    ClientResponse resp;
    // Burst of 2 passes, the third is throttled (unknown tickets are
    // still rate-limited requests).
    ASSERT_TRUE(client.request("GET", "/v1/campaigns/nope", &resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client.request("GET", "/v1/campaigns/nope", &resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client.request("GET", "/v1/campaigns/nope", &resp));
    EXPECT_EQ(resp.status, 429);
    // Backpressure responses tell well-behaved clients when to return.
    ASSERT_NE(resp.headers.find("retry-after"), resp.headers.end());
    EXPECT_EQ(resp.headers.at("retry-after"), "1");

    // Liveness probes and metric scrapers bypass the limiter.
    ASSERT_TRUE(client.request("GET", "/healthz", &resp));
    EXPECT_EQ(resp.status, 200);
    ASSERT_TRUE(client.request("GET", "/statsz", &resp));
    EXPECT_EQ(resp.status, 200);
    ASSERT_TRUE(client.request("GET", "/metricsz", &resp));
    EXPECT_EQ(resp.status, 200);

    EXPECT_GE(sessions.stats().rateLimited, 1u);
    server.stop();
}

TEST_F(HttpServiceTest, StatszReportsDedupAndCacheCounters)
{
    HttpClient client("127.0.0.1", server_->port());
    const std::string id = submitAndWait(client, kSpec);

    // Identical resubmission: pure dedup, no new execution.
    ClientResponse resp;
    ASSERT_TRUE(client.request("POST", "/v1/campaigns", &resp,
                               kSpec));
    EXPECT_EQ(resp.status, 200) << resp.body;
    EXPECT_NE(resp.body.find("\"deduplicated\":true"),
              std::string::npos);
    EXPECT_NE(resp.body.find("\"id\":\"" + id + "\""),
              std::string::npos);

    ASSERT_TRUE(client.request("GET", "/statsz", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"executed\":1"), std::string::npos)
        << resp.body;
    EXPECT_NE(resp.body.find("\"deduplicated\":1"),
              std::string::npos);
    EXPECT_NE(resp.body.find("\"stores\":"), std::string::npos);
}

TEST_F(HttpServiceTest, MetricszCountersMoveAcrossSubmitToDone)
{
    HttpClient client("127.0.0.1", server_->port());
    ClientResponse resp;

    // A metric's value on the line "name 3" / "name{labels} 3".
    const auto metricValue = [](const std::string &text,
                                const std::string &name) -> double {
        std::istringstream lines(text);
        for (std::string line; std::getline(lines, line);) {
            if (line.rfind(name, 0) != 0)
                continue;
            const char after = line.size() > name.size()
                                   ? line[name.size()]
                                   : '\0';
            if (after != ' ' && after != '{')
                continue; // prefix of a longer family name
            const size_t sp = line.rfind(' ');
            return std::stod(line.substr(sp + 1));
        }
        ADD_FAILURE() << "metric " << name << " not exposed";
        return -1.0;
    };

    ASSERT_TRUE(client.request("GET", "/metricsz", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.headers["content-type"].find("version=0.0.4"),
              std::string::npos)
        << "Prometheus scrapers key on the 0.0.4 content type";
    const double executedBefore =
        metricValue(resp.body, "rfl_queue_executed_total");

    const std::string id = submitAndWait(client, kSpec);

    ASSERT_TRUE(client.request("GET", "/metricsz", &resp));
    EXPECT_EQ(resp.status, 200);
    // The full submit -> done cycle must be visible in the registry:
    // queue counters, turnaround histogram and HTTP families all move.
    EXPECT_EQ(metricValue(resp.body, "rfl_queue_executed_total"),
              executedBefore + 1);
    EXPECT_GE(metricValue(resp.body, "rfl_queue_submitted_total"),
              1.0);
    EXPECT_GE(
        metricValue(resp.body, "rfl_queue_turnaround_seconds_count"),
        1.0);
    EXPECT_GE(metricValue(resp.body, "rfl_campaign_job_seconds_count"),
              1.0);
    EXPECT_GE(metricValue(resp.body, "rfl_http_requests_total"), 2.0);
    EXPECT_NE(resp.body.find("# TYPE rfl_queue_executed_total counter"),
              std::string::npos);
    EXPECT_NE(resp.body.find(
                  "rfl_http_request_seconds_bucket{endpoint="),
              std::string::npos)
        << "per-endpoint latency histograms must be labeled";

    // /statsz serves the same registry as JSON, same numbers.
    ASSERT_TRUE(client.request("GET", "/statsz", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"executed\":1"), std::string::npos);

    // And the span tree of the finished job is fetchable.
    ASSERT_TRUE(client.request("GET", "/tracez", &resp));
    EXPECT_EQ(resp.status, 400) << "?job=<ticket> is required";
    ASSERT_TRUE(client.request(
        "GET", "/tracez?job=0123456789abcdef", &resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client.request("GET", "/tracez?job=" + id, &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(resp.body.find("\"name\":\"campaign\""),
              std::string::npos);
    EXPECT_NE(resp.body.find("\"name\":\"simulate\""),
              std::string::npos)
        << "executor-level spans must ride the job's tracer";
}

} // namespace
