/**
 * @file
 * Concurrent-deduplication tests for the service job queue: identical
 * campaign specs submitted by any number of concurrent clients must
 * execute exactly once, and every submitter must read the same
 * cache-consistent artifacts.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/job_queue.hh"

namespace
{

using namespace rfl::service;

const char *const kSpec =
    "name = dedup-test\n"
    "machine = small\n"
    "kernel = daxpy:n=4096\n"
    "kernel = sum:n=4096\n"
    "variant = cold-1c: protocol=cold cores=0 reps=1\n";

TEST(ServiceDedup, ConcurrentIdenticalSubmissionsRunOnce)
{
    JobQueueOptions opts;
    opts.workers = 2;
    opts.exec.threads = 2;
    JobQueue queue(opts);

    constexpr int kClients = 8;
    std::vector<SubmitOutcome> outcomes(kClients);
    {
        // All clients race their submissions through the same queue.
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int i = 0; i < kClients; ++i) {
            clients.emplace_back([&queue, &outcomes, i] {
                outcomes[static_cast<size_t>(i)] =
                    queue.submit(kSpec);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }

    // Exactly one submission created the job; the rest deduplicated
    // onto the same ticket.
    int accepted = 0, deduplicated = 0;
    std::string id;
    for (const SubmitOutcome &o : outcomes) {
        if (o.kind == SubmitOutcome::Kind::Accepted)
            ++accepted;
        else if (o.kind == SubmitOutcome::Kind::Deduplicated)
            ++deduplicated;
        else
            FAIL() << "unexpected submit outcome";
        if (id.empty())
            id = o.id;
        EXPECT_EQ(o.id, id) << "dedup must yield one shared ticket";
    }
    EXPECT_EQ(accepted, 1);
    EXPECT_EQ(deduplicated, kClients - 1);

    ASSERT_TRUE(queue.waitFor(id, 60.0));

    // One execution, visible to every client.
    const JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.done, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.deduplicated,
              static_cast<uint64_t>(kClients - 1));

    // Every client reads the same bytes.
    std::string first;
    ASSERT_TRUE(queue.analysisJson(id, &first));
    EXPECT_FALSE(first.empty());
    for (int i = 0; i < kClients; ++i) {
        std::string again;
        ASSERT_TRUE(queue.analysisJson(id, &again));
        EXPECT_EQ(again, first);
    }
}

TEST(ServiceDedup, ResubmitAfterCompletionHitsSameTicket)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    const SubmitOutcome first = queue.submit(kSpec);
    ASSERT_EQ(first.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(first.id, 60.0));

    // Hours-later resubmission of the same spec: no new execution,
    // the finished ticket answers immediately.
    const SubmitOutcome second = queue.submit(kSpec);
    EXPECT_EQ(second.kind, SubmitOutcome::Kind::Deduplicated);
    EXPECT_EQ(second.id, first.id);
    EXPECT_EQ(second.state, JobState::Done);
    EXPECT_EQ(queue.stats().executed, 1u);

    // A *different* spec is a different ticket.
    const SubmitOutcome third = queue.submit(
        "name = dedup-test-other\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n");
    ASSERT_EQ(third.kind, SubmitOutcome::Kind::Accepted);
    EXPECT_NE(third.id, first.id);
    ASSERT_TRUE(queue.waitFor(third.id, 60.0));
    EXPECT_EQ(queue.stats().executed, 2u);
}

} // namespace
