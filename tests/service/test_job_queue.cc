/**
 * @file
 * Job-queue lifecycle tests: validation, backpressure, failure
 * surfacing, shared-cache reuse across distinct submissions.
 */

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/job_queue.hh"
#include "support/failpoint.hh"

namespace
{

using namespace rfl::service;

const char *const kSmallSpec =
    "name = queue-test\n"
    "machine = small\n"
    "kernel = daxpy:n=4096\n"
    "variant = cold-1c: protocol=cold cores=0 reps=1\n";

TEST(ServiceJobQueue, InvalidSpecRejectedWithoutExecution)
{
    JobQueue queue;

    const SubmitOutcome bad = queue.submit("kernel = daxpy:n=64\n");
    EXPECT_EQ(bad.kind, SubmitOutcome::Kind::Invalid);
    EXPECT_NE(bad.error.find("no machines"), std::string::npos)
        << "error: " << bad.error;

    const SubmitOutcome unknown = queue.submit(
        "machine = small\n"
        "kernel = not-a-kernel:n=64\n"
        "variant = v: protocol=cold cores=0 reps=1\n");
    EXPECT_EQ(unknown.kind, SubmitOutcome::Kind::Invalid);
    EXPECT_FALSE(unknown.error.empty());

    const JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.rejectedInvalid, 2u);
    EXPECT_EQ(stats.executed, 0u);
}

TEST(ServiceJobQueue, StatusAndArtifactsFollowLifecycle)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    JobStatus st;
    EXPECT_FALSE(queue.status("0123456789abcdef", &st));

    const SubmitOutcome o = queue.submit(kSmallSpec);
    ASSERT_EQ(o.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(o.id, 60.0));

    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_EQ(st.campaign, "queue-test");
    EXPECT_EQ(st.jobs, 2u); // one ceiling + one measure
    EXPECT_EQ(st.scenarioCount, 1u);
    EXPECT_GT(st.wallSeconds, 0.0);

    std::string body;
    EXPECT_TRUE(queue.analysisJson(o.id, &body));
    EXPECT_NE(body.find("\"kind\":\"rfl-analysis\""),
              std::string::npos);
    EXPECT_TRUE(queue.reportHtml(o.id, &body));
    EXPECT_NE(body.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_TRUE(queue.svg(o.id, 0, &body));
    EXPECT_NE(body.find("<svg"), std::string::npos);
    EXPECT_FALSE(queue.svg(o.id, 1, &body)) << "only one scenario";
}

TEST(ServiceJobQueue, BackpressureRejectsBeyondQueueDepth)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.maxQueued = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    // Job A keeps the single worker busy (milliseconds of simulation
    // against the microseconds the submissions below take) while the
    // backpressure path is probed. Not bigger: under ASan this runs
    // tens of seconds and the waits below must stay comfortable.
    const SubmitOutcome a = queue.submit(
        "name = queue-busy\n"
        "machine = default\n"
        "kernel = triad:n=524288\n"
        "variant = warm-1c: protocol=warm cores=0 reps=2\n");
    ASSERT_EQ(a.kind, SubmitOutcome::Kind::Accepted);

    // Wait until A left the queue (is running), so the bound below is
    // exercised by B and C alone.
    JobStatus st;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(queue.status(a.id, &st));
        if (st.state != JobState::Queued)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(st.state, JobState::Queued);

    const SubmitOutcome b = queue.submit(
        "name = queue-b\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n");
    const SubmitOutcome c = queue.submit(
        "name = queue-c\n"
        "machine = small\n"
        "kernel = sum:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n");

    if (b.kind == SubmitOutcome::Kind::Accepted) {
        // B filled the single queue slot; C must bounce.
        EXPECT_EQ(c.kind, SubmitOutcome::Kind::QueueFull);
        EXPECT_GE(queue.stats().rejectedFull, 1u);
        ASSERT_TRUE(queue.waitFor(b.id, 300.0));
    } else {
        // A was still queued after the poll bound — accept the rarer
        // interleaving as long as backpressure engaged.
        EXPECT_EQ(b.kind, SubmitOutcome::Kind::QueueFull);
    }
    ASSERT_TRUE(queue.waitFor(a.id, 300.0));
}

TEST(ServiceJobQueue, WorkerFailureSurfacesAsFailedJob)
{
    // An unwritable cache spill makes the first store fatal(); in the
    // service that must mark the job Failed — with the message — and
    // leave the process alive.
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    opts.cachePath =
        "/nonexistent-rfl-dir/definitely/missing/cache.jsonl";
    JobQueue queue(opts);

    const SubmitOutcome o = queue.submit(kSmallSpec);
    ASSERT_EQ(o.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(o.id, 60.0));

    JobStatus st;
    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_EQ(st.state, JobState::Failed);
    EXPECT_NE(st.error.find("cannot append"), std::string::npos)
        << "error: " << st.error;
    EXPECT_EQ(queue.stats().failed, 1u);

    std::string body;
    EXPECT_FALSE(queue.analysisJson(o.id, &body))
        << "failed jobs expose no artifacts";

    // Resubmission of a failed spec retries instead of deduplicating
    // onto the corpse.
    const SubmitOutcome retry = queue.submit(kSmallSpec);
    EXPECT_EQ(retry.kind, SubmitOutcome::Kind::Accepted);
    EXPECT_EQ(retry.id, o.id);
    ASSERT_TRUE(queue.waitFor(retry.id, 60.0));
}

TEST(ServiceJobQueue, FinishedJobsEvictedBeyondRetentionBound)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.maxFinished = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    const SubmitOutcome a = queue.submit(kSmallSpec);
    ASSERT_EQ(a.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(a.id, 60.0));

    const SubmitOutcome b = queue.submit(
        "name = queue-evict-b\n"
        "machine = small\n"
        "kernel = sum:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n");
    ASSERT_EQ(b.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(b.id, 60.0));

    // B's completion evicted A (oldest finished past the bound of 1).
    JobStatus st;
    EXPECT_FALSE(queue.status(a.id, &st))
        << "evicted ticket must be forgotten";
    ASSERT_TRUE(queue.status(b.id, &st));
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_EQ(queue.stats().done, 1u) << "counters track retained jobs";

    // Resubmitting the evicted spec re-runs it — every cell from the
    // warm result cache.
    const SubmitOutcome again = queue.submit(kSmallSpec);
    ASSERT_EQ(again.kind, SubmitOutcome::Kind::Accepted);
    EXPECT_EQ(again.id, a.id) << "same content, same ticket";
    ASSERT_TRUE(queue.waitFor(again.id, 60.0));
    ASSERT_TRUE(queue.status(again.id, &st));
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_EQ(st.simulated, 0u) << "re-run must be pure cache hits";
}

TEST(ServiceJobQueue, WaitForTimesOutUnderStalledWorker)
{
    // A stalled worker (injected 1.5 s drain stall) must not wedge
    // clients: waitFor with a short budget returns false, and the same
    // ticket still completes once the stall clears.
    ASSERT_TRUE(rfl::failpoint::arm("queue.drain", "sleep(1500)"));
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    const SubmitOutcome o = queue.submit(kSmallSpec);
    ASSERT_EQ(o.kind, SubmitOutcome::Kind::Accepted);
    EXPECT_FALSE(queue.waitFor(o.id, 0.2))
        << "waitFor must give up, not block on the stalled worker";

    JobStatus st;
    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_TRUE(st.state == JobState::Queued ||
                st.state == JobState::Running);

    rfl::failpoint::disarmAll();
    ASSERT_TRUE(queue.waitFor(o.id, 60.0));
    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_EQ(st.state, JobState::Done);
}

TEST(ServiceJobQueue, RunTimeoutSurfacesAsTimedOutNotHang)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    const std::string spec =
        std::string(kSmallSpec) + "timeout = 0.000001\n";
    const SubmitOutcome o = queue.submit(spec);
    ASSERT_EQ(o.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(o.id, 60.0))
        << "a timed-out campaign still finishes, as timed_out";

    JobStatus st;
    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_EQ(st.state, JobState::TimedOut);
    EXPECT_NE(st.error.find("deadline exceeded"), std::string::npos)
        << "error: " << st.error;
    EXPECT_EQ(queue.stats().timedOut, 1u);
    EXPECT_EQ(queue.stats().failed, 0u);

    std::string body;
    EXPECT_FALSE(queue.analysisJson(o.id, &body))
        << "timed-out jobs expose no artifacts";

    // Like Failed, TimedOut resubmission retries rather than
    // deduplicating onto the dead ticket.
    const SubmitOutcome retry = queue.submit(spec);
    EXPECT_EQ(retry.kind, SubmitOutcome::Kind::Accepted);
    EXPECT_EQ(retry.id, o.id);
    ASSERT_TRUE(queue.waitFor(retry.id, 60.0));
    EXPECT_EQ(queue.stats().timedOut, 1u)
        << "retry replaces the timed-out record, not double-counts";
}

TEST(ServiceJobQueue, PerJobTimeoutOptionTimesOutCampaigns)
{
    // The service-level budget (--job-timeout) needs no cooperation
    // from the submitted spec.
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    opts.exec.jobTimeoutSeconds = 1e-6;
    JobQueue queue(opts);

    const SubmitOutcome o = queue.submit(kSmallSpec);
    ASSERT_EQ(o.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(o.id, 60.0));
    JobStatus st;
    ASSERT_TRUE(queue.status(o.id, &st));
    EXPECT_EQ(st.state, JobState::TimedOut);
}

TEST(ServiceJobQueue, InjectedSubmitFaultDegradesToQueueFull)
{
    ASSERT_TRUE(rfl::failpoint::arm("queue.submit", "error:count=1"));
    JobQueue queue;
    const SubmitOutcome o = queue.submit(kSmallSpec);
    EXPECT_EQ(o.kind, SubmitOutcome::Kind::QueueFull)
        << "injected submit fault must map to well-formed backpressure";
    rfl::failpoint::disarmAll();

    const SubmitOutcome retry = queue.submit(kSmallSpec);
    ASSERT_EQ(retry.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(retry.id, 60.0));
}

TEST(ServiceJobQueue, SharedCacheServesOverlappingCampaigns)
{
    JobQueueOptions opts;
    opts.workers = 1;
    opts.exec.threads = 1;
    JobQueue queue(opts);

    const SubmitOutcome a = queue.submit(kSmallSpec);
    ASSERT_EQ(a.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(a.id, 60.0));

    // A different campaign containing the same (machine, kernel,
    // variant) cell: its jobs answer from the shared cache.
    const SubmitOutcome b = queue.submit(
        "name = queue-test-super\n"
        "machine = small\n"
        "kernel = daxpy:n=4096\n"
        "kernel = triad:n=4096\n"
        "variant = cold-1c: protocol=cold cores=0 reps=1\n");
    ASSERT_EQ(b.kind, SubmitOutcome::Kind::Accepted);
    ASSERT_TRUE(queue.waitFor(b.id, 60.0));

    JobStatus st;
    ASSERT_TRUE(queue.status(b.id, &st));
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_GE(st.cacheHits, 2u)
        << "ceiling + daxpy measurement were already cached";
    EXPECT_GE(queue.cacheStats().hits, 2u);
}

} // namespace
