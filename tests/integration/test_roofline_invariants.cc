/**
 * @file
 * System-level properties the whole toolchain must satisfy — these are
 * the invariants that make the paper's methodology trustworthy:
 *
 *   1. No measured kernel exceeds the roof at its intensity (within a
 *      small tolerance for measurement bias the paper also discusses).
 *   2. Warm caches never increase measured traffic.
 *   3. Enabling the prefetcher never decreases measured traffic, and
 *      (for streaming kernels) does not slow execution down.
 *   4. More cores never increase runtime for partitionable kernels.
 *   5. Better dgemm implementations are strictly faster at (almost) the
 *      same operational intensity.
 */

#include <memory>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "roofline/experiment.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

class Invariants : public ::testing::Test
{
  protected:
    static Experiment &
    experiment()
    {
        static Experiment exp; // shared: ceiling probing is expensive
        return exp;
    }
};

TEST_F(Invariants, NoKernelAboveTheRoof)
{
    Experiment &exp = experiment();
    const RooflineModel &model = exp.modelFor({0});
    MeasureOptions opts;
    opts.repetitions = 1;

    const char *specs[] = {
        "daxpy:n=1048576",  "dot:n=1048576",       "triad:n=1048576",
        "triad-nt:n=1048576", "sum:n=1048576",     "stencil3:n=1048576",
        "dgemv:m=512,n=512", "dgemm-naive:n=96",   "dgemm-blocked:n=96",
        "dgemm-opt:n=96",    "fft:n=65536",        "spmv-csr:rows=16384,nnz=16",
    };
    for (const char *spec : specs) {
        const Measurement m = exp.measureSpec(spec, opts);
        const double att = model.attainable(m.oi());
        EXPECT_LE(m.perf(), att * 1.05)
            << spec << ": P=" << m.perf() << " roof(I)=" << att;
        EXPECT_GT(m.perf(), 0.0) << spec;
    }
}

TEST_F(Invariants, WarmNeverIncreasesTraffic)
{
    Experiment &exp = experiment();
    MeasureOptions cold;
    cold.repetitions = 1;
    MeasureOptions warm = cold;
    warm.protocol = CacheProtocol::Warm;

    for (const char *spec :
         {"daxpy:n=16384", "dgemv:m=256,n=256", "fft:n=16384"}) {
        const Measurement mc = exp.measureSpec(spec, cold);
        const Measurement mw = exp.measureSpec(spec, warm);
        EXPECT_LE(mw.trafficBytes, mc.trafficBytes * 1.01) << spec;
        // Work is protocol-independent.
        EXPECT_NEAR(mw.flops, mc.flops, 1e-6 * mc.flops) << spec;
    }
}

TEST_F(Invariants, PrefetchingInflatesTrafficButNotRuntime)
{
    Experiment &exp = experiment();
    MeasureOptions opts;
    opts.repetitions = 1;

    exp.machine().setPrefetchEnabled(false);
    const Measurement off = exp.measureSpec("stencil3:n=1048576", opts);
    exp.machine().setPrefetchEnabled(true);
    const Measurement on = exp.measureSpec("stencil3:n=1048576", opts);

    // The IMC sees at least as many bytes with the prefetcher on...
    EXPECT_GE(on.trafficBytes, off.trafficBytes * 0.999);
    // ...and the kernel does not get slower (latency is hidden).
    EXPECT_LE(on.seconds, off.seconds * 1.02);
}

TEST_F(Invariants, CoreScalingNeverSlowsDown)
{
    Experiment &exp = experiment();
    const char *spec = "triad:n=2097152";
    double prev_seconds = 1e30;
    for (int cores : {1, 2, 4}) {
        MeasureOptions opts;
        opts.repetitions = 1;
        opts.cores.clear();
        for (int c = 0; c < cores; ++c)
            opts.cores.push_back(c);
        const Measurement m = exp.measureSpec(spec, opts);
        EXPECT_LE(m.seconds, prev_seconds * 1.01)
            << cores << " cores slower than fewer";
        prev_seconds = m.seconds;
    }
}

TEST_F(Invariants, BandwidthBoundKernelStopsScalingAtSocketLimit)
{
    Experiment &exp = experiment();
    const char *spec = "triad:n=4194304";
    auto measure = [&](std::vector<int> cores) {
        MeasureOptions opts;
        opts.repetitions = 1;
        opts.cores = std::move(cores);
        return exp.measureSpec(spec, opts);
    };
    const Measurement one = measure({0});
    const Measurement four = measure({0, 1, 2, 3});
    const double speedup = one.seconds / four.seconds;
    // 4 cores cannot give 4x: the socket is 38.4/14 = 2.74x a core.
    EXPECT_LT(speedup, 3.2);
    EXPECT_GT(speedup, 1.5);
}

TEST_F(Invariants, ComputeBoundKernelScalesNearlyLinearly)
{
    Experiment &exp = experiment();
    const char *spec = "dgemm-opt:n=192";
    auto measure = [&](std::vector<int> cores) {
        MeasureOptions opts;
        opts.repetitions = 1;
        opts.cores = std::move(cores);
        return exp.measureSpec(spec, opts);
    };
    const Measurement one = measure({0});
    const Measurement four = measure({0, 1, 2, 3});
    EXPECT_GT(one.seconds / four.seconds, 3.0);
}

TEST_F(Invariants, DgemmImplementationsClimbTowardTheRoof)
{
    Experiment &exp = experiment();
    MeasureOptions opts;
    opts.repetitions = 1;
    const Measurement naive = exp.measureSpec("dgemm-naive:n=128", opts);
    const Measurement blocked =
        exp.measureSpec("dgemm-blocked:n=128", opts);
    const Measurement opt = exp.measureSpec("dgemm-opt:n=128", opts);

    EXPECT_GT(blocked.perf(), 2.0 * naive.perf());
    EXPECT_GT(opt.perf(), 1.5 * blocked.perf());
    // The optimized variant reaches a healthy fraction of peak.
    const RooflineModel &model = exp.modelFor({0});
    EXPECT_GT(opt.perf(), 0.5 * model.peakCompute());
}

TEST_F(Invariants, VectorWidthCeilingsRespected)
{
    // A kernel executed with scalar engines must respect the scalar
    // ceiling, not just the AVX roof.
    Experiment &exp = experiment();
    const RooflineModel &model = exp.modelFor({0});
    MeasureOptions opts;
    opts.repetitions = 1;
    opts.lanes = 1;
    const Measurement m = exp.measureSpec("dgemm-opt:n=128", opts);
    EXPECT_LE(m.perf(), model.computeCeiling("scalar+FMA") * 1.05);
}

TEST_F(Invariants, IntensityGrowsWithFftSize)
{
    // I(FFT) ~ log(n) once streaming: larger transforms have higher
    // intensity in the cache-resident regime flattening beyond.
    Experiment &exp = experiment();
    MeasureOptions opts;
    opts.repetitions = 1;
    const Measurement small = exp.measureSpec("fft:n=1024", opts);
    const Measurement large = exp.measureSpec("fft:n=65536", opts);
    EXPECT_GT(large.oi(), small.oi());
}

} // namespace
