/**
 * @file
 * Trace record/replay tests: the on-disk access-stream format and the
 * TraceKernel replay workload.
 *
 * The load-bearing property is the round trip: recording a kernel's
 * access stream while it simulates, then replaying the file on a fresh
 * machine, must reproduce every architectural counter of the original
 * run — the trace is the workload, bit-for-bit. The comparison uses
 * Machine::printStats(), which renders every cumulative counter
 * (per-core retirement, caches, TLBs, IMCs), so a single string
 * equality covers the whole observable state.
 *
 * Robustness: truncated and corrupted files must be rejected by
 * TraceReader::open() with a message naming the failure, never half-
 * replayed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/engine.hh"
#include "kernels/registry.hh"
#include "sim/machine.hh"
#include "support/address_arena.hh"
#include "trace/trace_file.hh"
#include "trace/trace_kernel.hh"

namespace
{

using namespace rfl;
using namespace rfl::trace;

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "rfl-" + name;
}

/** Every cumulative machine counter as one comparable string. */
std::string
statsString(const sim::Machine &machine)
{
    std::ostringstream out;
    machine.printStats(out);
    return out.str();
}

/**
 * Run @p spec once through a batched SimEngine on a fresh machine,
 * recording to @p trace_path when non-empty.
 * @return the machine's full counter rendering.
 */
std::string
runKernelOnce(const std::string &spec, const std::string &trace_path,
              int lanes = 4, uint64_t seed = 42,
              uint32_t batch_limit = AccessBatch::capacity)
{
    sim::Machine machine(sim::MachineConfig::defaultPlatform());
    AddressArena::Scope scope;
    auto kernel = kernels::createKernel(spec);
    kernel->init(seed);
    machine.setDependentAccesses(kernel->dependentAccesses());
    std::unique_ptr<TraceWriter> writer;
    if (!trace_path.empty()) {
        writer = std::make_unique<TraceWriter>(trace_path);
        writer->setDependentAccesses(kernel->dependentAccesses());
    }
    {
        kernels::SimEngine engine(machine, 0, lanes, true);
        engine.setBatchLimit(batch_limit);
        if (writer)
            engine.setTraceWriter(writer.get());
        kernel->run(engine, 0, 1);
    }
    if (writer)
        writer->finish();
    machine.setDependentAccesses(false);
    return statsString(machine);
}

/** Replay @p trace_path on a fresh machine; @return counter rendering. */
std::string
replayOnce(const std::string &trace_path, bool dependent = false)
{
    sim::Machine machine(sim::MachineConfig::defaultPlatform());
    TraceKernel kernel(trace_path);
    machine.setDependentAccesses(dependent);
    {
        kernels::SimEngine engine(machine, 0, 1, true);
        kernel.run(engine, 0, 1);
    }
    machine.setDependentAccesses(false);
    return statsString(machine);
}

TEST(TraceRoundTrip, ReplayReproducesEveryCounter)
{
    for (const char *spec :
         {"daxpy:n=2048", "triad-nt:n=2048", "sum:n=2048",
          "dgemv:m=48,n=48", "strided-sum:n=4096,stride=16"}) {
        const std::string path = tmpPath("roundtrip.rfltrace");
        const std::string direct = runKernelOnce(spec, path);
        const std::string replayed = replayOnce(path);
        EXPECT_EQ(direct, replayed) << spec;
        std::remove(path.c_str());
    }
}

TEST(TraceRoundTrip, DependentAccessKernel)
{
    const std::string path = tmpPath("pchase.rfltrace");
    const std::string direct =
        runKernelOnce("pointer-chase:nodes=512,hops=2048", path, 1);
    const std::string replayed = replayOnce(path, /*dependent=*/true);
    EXPECT_EQ(direct, replayed);
    // The dependence property survives the round trip, so a Measurer
    // replays pointer chasing with MLP = 1 without being told.
    TraceKernel kernel(path);
    EXPECT_TRUE(kernel.dependentAccesses());
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, ReplayIsRepeatable)
{
    const std::string path = tmpPath("repeat.rfltrace");
    runKernelOnce("daxpy:n=1024", path);
    // Two replays of one TraceKernel instance (reps of a measurement).
    sim::Machine machine(sim::MachineConfig::defaultPlatform());
    TraceKernel kernel(path);
    std::string first;
    {
        kernels::SimEngine engine(machine, 0, 1, true);
        kernel.run(engine, 0, 1);
        first = statsString(machine);
        kernel.run(engine, 0, 1);
    }
    EXPECT_NE(first, statsString(machine)); // counters advanced again
    std::remove(path.c_str());
}

TEST(TraceSummaryTotals, MatchRecordedStream)
{
    const std::string path = tmpPath("summary.rfltrace");
    runKernelOnce("daxpy:n=1024", path, /*lanes=*/4);
    TraceReader reader;
    ASSERT_TRUE(reader.open(path)) << reader.error();
    const TraceSummary &s = reader.summary();
    // daxpy: n/lanes vloads of x and y each, n/lanes vstores of y,
    // 2n flops (one fused multiply-add per element, FMA counts 2 ops).
    EXPECT_EQ(s.loads, 2u * (1024 / 4));
    EXPECT_EQ(s.stores, 1024u / 4);
    EXPECT_EQ(s.ntStores, 0u);
    EXPECT_EQ(s.flops, 2u * 1024u);
    EXPECT_EQ(s.memBytes, 3u * 1024u * 8u);
    EXPECT_GT(s.records, 0u);
    EXPECT_GT(s.otherUops, 0u);
    // Addresses are canonical arena addresses, host-independent.
    EXPECT_GE(s.minAddr, AddressArena::baseAddress);
    std::remove(path.c_str());
}

TEST(TraceDeterminism, SameRunSameHashDifferentSeedDifferentHash)
{
    const std::string a = tmpPath("det-a.rfltrace");
    const std::string b = tmpPath("det-b.rfltrace");
    const std::string c = tmpPath("det-c.rfltrace");
    runKernelOnce("sum:n=1024", a, 1, /*seed=*/42);
    runKernelOnce("sum:n=1024", b, 1, /*seed=*/42);
    // A different kernel size must change the stream.
    runKernelOnce("sum:n=2048", c, 1, /*seed=*/42);
    TraceReader ra, rb, rc;
    ASSERT_TRUE(ra.open(a)) << ra.error();
    ASSERT_TRUE(rb.open(b)) << rb.error();
    ASSERT_TRUE(rc.open(c)) << rc.error();
    EXPECT_EQ(ra.stableHash(), rb.stableHash());
    EXPECT_NE(ra.stableHash(), rc.stableHash());
    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

TEST(TraceDeterminism, HashIsChunkingIndependent)
{
    // The same record stream written as one chunk vs one record per
    // chunk must content-address identically.
    const std::string one = tmpPath("chunk-one.rfltrace");
    const std::string many = tmpPath("chunk-many.rfltrace");
    AccessBatch batch;
    for (uint32_t i = 0; i < 100; ++i)
        batch.pushMem(AccessKind::Load, 0, (1ull << 32) + 8 * i, 8);
    {
        TraceWriter w(one);
        w.append(batch);
        w.finish();
    }
    {
        TraceWriter w(many);
        for (uint32_t i = 0; i < 100; ++i) {
            AccessBatch single;
            single.pushMem(AccessKind::Load, 0, (1ull << 32) + 8 * i, 8);
            w.append(single);
        }
        w.finish();
    }
    TraceReader ra, rb;
    ASSERT_TRUE(ra.open(one)) << ra.error();
    ASSERT_TRUE(rb.open(many)) << rb.error();
    EXPECT_EQ(ra.stableHash(), rb.stableHash());
    EXPECT_EQ(ra.summary().records, 100u);
    EXPECT_EQ(rb.summary().records, 100u);
    std::remove(one.c_str());
    std::remove(many.c_str());
}

TEST(TraceRobustness, TruncatedFileRejected)
{
    const std::string path = tmpPath("trunc.rfltrace");
    runKernelOnce("daxpy:n=1024", path);
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    // Cut mid-file: drops the end marker (and likely a chunk tail).
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    TraceReader reader;
    EXPECT_FALSE(reader.open(path));
    EXPECT_NE(reader.error().find("truncated"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

TEST(TraceRobustness, CorruptedPayloadRejected)
{
    const std::string path = tmpPath("corrupt.rfltrace");
    runKernelOnce("daxpy:n=1024", path);
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    // Flip a byte inside the first chunk's payload (file header is 16
    // bytes, chunk header 24; payload starts at 40).
    f.seekg(48);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(48);
    f.write(&byte, 1);
    f.close();
    TraceReader reader;
    EXPECT_FALSE(reader.open(path));
    EXPECT_NE(reader.error().find("corrupt"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

TEST(TraceRobustness, NonTraceFileRejected)
{
    const std::string path = tmpPath("not-a-trace.rfltrace");
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file at all, but it is long enough";
    out.close();
    TraceReader reader;
    EXPECT_FALSE(reader.open(path));
    EXPECT_NE(reader.error().find("bad magic"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

TEST(TraceRobustness, MissingFileRejected)
{
    TraceReader reader;
    EXPECT_FALSE(reader.open(tmpPath("does-not-exist.rfltrace")));
    EXPECT_NE(reader.error().find("cannot open"), std::string::npos);
}

TEST(TraceKernelApi, RegistryBuildsReplayKernels)
{
    const std::string path = tmpPath("registry.rfltrace");
    runKernelOnce("sum:n=1024", path, 1);
    const auto kernel = kernels::createKernel("trace:file=" + path);
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->name(), "trace");
    EXPECT_FALSE(kernel->parallelizable());
    EXPECT_GT(kernel->expectedFlops(), 0.0);
    EXPECT_GT(kernel->workingSetBytes(), 0u);
    EXPECT_TRUE(std::isnan(kernel->expectedColdTrafficBytes()));
    std::remove(path.c_str());
}

TEST(TraceKernelApiDeath, BadSpecAndBadFileAreFatal)
{
    EXPECT_EXIT(kernels::createKernel("trace"),
                ::testing::ExitedWithCode(1), "trace:file=");
    EXPECT_EXIT(kernels::createKernel("trace:file="),
                ::testing::ExitedWithCode(1), "trace:file=");
    EXPECT_EXIT(
        kernels::createKernel("trace:file=/nonexistent/x.rfltrace"),
        ::testing::ExitedWithCode(1), "cannot open");
}

/** Batch-limit boundaries during recording must not change replayed
 *  counters (the stream differs only in where deferred FP retirements
 *  materialize, which commutes). */
TEST(TraceRoundTrip, RecordingBatchLimitInvisibleInReplay)
{
    const std::string big = tmpPath("lim-big.rfltrace");
    const std::string small = tmpPath("lim-small.rfltrace");
    runKernelOnce("daxpy:n=1024", big, 4, 42, AccessBatch::capacity);
    runKernelOnce("daxpy:n=1024", small, 4, 42, /*batch_limit=*/7);
    EXPECT_EQ(replayOnce(big), replayOnce(small));
    std::remove(big.c_str());
    std::remove(small.c_str());
}

} // namespace
