/**
 * @file
 * deriveMetrics(): the derived-roofline-metric formulas against a
 * hand-checkable model (peak 100 Gflop/s, 10 GB/s, ridge 10 f/B).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/metrics.hh"

namespace
{

using namespace rfl;
using namespace rfl::analysis;

roofline::RooflineModel
model()
{
    roofline::RooflineModel m;
    m.addComputeCeiling("scalar", 25e9);
    m.addComputeCeiling("vector", 100e9);
    m.addBandwidthCeiling("one-thread", 6e9);
    m.addBandwidthCeiling("all-threads", 10e9);
    return m;
}

TEST(DeriveMetrics, MemoryBoundPoint)
{
    // I = 1 < ridge 10: roof is I * beta = 10 Gflop/s.
    const DerivedMetrics d = deriveMetrics(1.0, 8e9, model());
    EXPECT_DOUBLE_EQ(d.attainable, 10e9);
    EXPECT_DOUBLE_EQ(d.pctRoof, 80.0);
    EXPECT_DOUBLE_EQ(d.pctPeak, 8.0);
    EXPECT_DOUBLE_EQ(d.achievedBandwidth, 8e9);
    EXPECT_DOUBLE_EQ(d.pctPeakBandwidth, 80.0);
    EXPECT_EQ(d.bound, BoundClass::MemoryBound);
    EXPECT_EQ(d.bindingCeiling, "all-threads");
}

TEST(DeriveMetrics, ComputeBoundPoint)
{
    // I = 20 > ridge 10: roof is pi = 100 Gflop/s.
    const DerivedMetrics d = deriveMetrics(20.0, 50e9, model());
    EXPECT_DOUBLE_EQ(d.attainable, 100e9);
    EXPECT_DOUBLE_EQ(d.pctRoof, 50.0);
    EXPECT_DOUBLE_EQ(d.pctPeak, 50.0);
    EXPECT_DOUBLE_EQ(d.achievedBandwidth, 2.5e9);
    EXPECT_DOUBLE_EQ(d.pctPeakBandwidth, 25.0);
    EXPECT_EQ(d.bound, BoundClass::ComputeBound);
    EXPECT_EQ(d.bindingCeiling, "vector");
}

TEST(DeriveMetrics, RidgePointIsComputeBound)
{
    const DerivedMetrics d = deriveMetrics(10.0, 100e9, model());
    EXPECT_EQ(d.bound, BoundClass::ComputeBound);
    EXPECT_DOUBLE_EQ(d.pctRoof, 100.0);
}

TEST(DeriveMetrics, InfiniteIntensity)
{
    // Zero measured traffic (warm LLC-resident kernel): I = inf.
    const double inf = std::numeric_limits<double>::infinity();
    const DerivedMetrics d = deriveMetrics(inf, 30e9, model());
    EXPECT_TRUE(std::isinf(d.oi));
    EXPECT_DOUBLE_EQ(d.attainable, 100e9);
    EXPECT_DOUBLE_EQ(d.pctRoof, 30.0);
    EXPECT_EQ(d.bound, BoundClass::ComputeBound);
    EXPECT_DOUBLE_EQ(d.achievedBandwidth, 0.0);
    EXPECT_DOUBLE_EQ(d.pctPeakBandwidth, 0.0);
}

TEST(DeriveMetrics, DegenerateZeroPerf)
{
    const DerivedMetrics d = deriveMetrics(1.0, 0.0, model());
    EXPECT_DOUBLE_EQ(d.perf, 0.0);
    EXPECT_DOUBLE_EQ(d.pctRoof, 0.0);
    EXPECT_DOUBLE_EQ(d.pctPeak, 0.0);
    EXPECT_DOUBLE_EQ(d.pctPeakBandwidth, 0.0);
}

TEST(DeriveMetrics, FromMeasurement)
{
    roofline::Measurement m;
    m.kernel = "triad";
    m.flops = 8e9;
    m.trafficBytes = 8e9; // I = 1
    m.seconds = 1.0;      // P = 8 Gflop/s
    const DerivedMetrics d = deriveMetrics(m, model());
    EXPECT_DOUBLE_EQ(d.oi, 1.0);
    EXPECT_DOUBLE_EQ(d.perf, 8e9);
    EXPECT_DOUBLE_EQ(d.pctRoof, 80.0);
}

TEST(DeriveMetrics, BoundClassNames)
{
    EXPECT_STREQ(boundClassName(BoundClass::MemoryBound), "memory");
    EXPECT_STREQ(boundClassName(BoundClass::ComputeBound), "compute");
}

} // namespace
