/**
 * @file
 * Report emitters and the analysis.json codec: artifact set existence,
 * SVG/HTML structure, schema round-trip fidelity.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "analysis/analysis.hh"
#include "analysis/diff.hh"
#include "analysis/report.hh"
#include "analysis/svg.hh"

namespace
{

using namespace rfl;
using namespace rfl::analysis;

std::string
outDir()
{
    const char *dir = std::getenv("RFL_OUT_DIR");
    return dir != nullptr ? dir : "test-out";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

CampaignAnalysis
sampleDoc()
{
    CampaignAnalysis doc;
    doc.campaign = "sample";
    Scenario s;
    s.machine = "box";
    s.variant = "cold-1c";
    s.model.addComputeCeiling("scalar", 10e9);
    s.model.addComputeCeiling("vector", 40e9);
    s.model.addBandwidthCeiling("stream", 10e9);
    doc.scenarios.push_back(s);

    roofline::Measurement m;
    m.kernel = "triad";
    m.sizeLabel = "n=4096";
    m.protocol = "cold";
    m.flops = 8192;
    m.trafficBytes = 98304;
    m.seconds = 1e-5;
    doc.kernels.push_back(
        makeKernelRow("box", "cold-1c", m, s.model));

    // Warm resident: zero traffic, I = inf (the null-encoding case).
    roofline::Measurement warm = m;
    warm.protocol = "warm";
    warm.trafficBytes = 0.0;
    doc.kernels.push_back(
        makeKernelRow("box", "cold-1c", warm, s.model));

    PhaseRow phase;
    phase.machine = "box";
    phase.variant = "cold-1c";
    phase.trajectory.kernel = "triad";
    phase.trajectory.sizeLabel = "n=4096";
    phase.trajectory.protocol = "cold";
    phase.trajectory.period = 512;
    phase.trajectory.points = {
        {0.05, 1.0e9, 5e4, 1e6, 5e-5},
        {0.0625, 1.2e9, 6e4, 9.6e5, 5e-5},
    };
    phase.trajectory.totalFlops = 1.1e5;
    phase.trajectory.totalTrafficBytes = 1.96e6;
    phase.trajectory.totalSeconds = 1e-4;
    doc.phases.push_back(phase);
    return doc;
}

TEST(AnalysisJson, RoundTrip)
{
    const CampaignAnalysis doc = sampleDoc();
    const std::string text = encodeAnalysis(doc);
    const CampaignAnalysis back = decodeAnalysis(text);

    EXPECT_EQ(back.campaign, doc.campaign);
    ASSERT_EQ(back.scenarios.size(), 1u);
    EXPECT_EQ(back.scenarios[0].machine, "box");
    EXPECT_DOUBLE_EQ(back.scenarios[0].model.peakCompute(), 40e9);
    EXPECT_DOUBLE_EQ(back.scenarios[0].model.peakBandwidth(), 10e9);
    EXPECT_DOUBLE_EQ(
        back.scenarios[0].model.computeCeiling("scalar"), 10e9);

    ASSERT_EQ(back.kernels.size(), 2u);
    const KernelRow &a = back.kernels[0];
    EXPECT_EQ(a.kernel, "triad");
    EXPECT_DOUBLE_EQ(a.flops, 8192);
    EXPECT_DOUBLE_EQ(a.metrics.oi, doc.kernels[0].metrics.oi);
    EXPECT_DOUBLE_EQ(a.metrics.pctRoof, doc.kernels[0].metrics.pctRoof);
    EXPECT_EQ(a.metrics.bound, BoundClass::MemoryBound);

    // inf OI round-trips through the null encoding.
    EXPECT_TRUE(std::isinf(back.kernels[1].metrics.oi));
    EXPECT_EQ(back.kernels[1].metrics.bound, BoundClass::ComputeBound);

    ASSERT_EQ(back.phases.size(), 1u);
    EXPECT_EQ(back.phases[0].trajectory.period, 512u);
    ASSERT_EQ(back.phases[0].trajectory.points.size(), 2u);
    EXPECT_DOUBLE_EQ(back.phases[0].trajectory.points[1].perf, 1.2e9);

    // An encode-decode-encode cycle is a fixed point (stable bytes).
    EXPECT_EQ(encodeAnalysis(back), text);
}

TEST(AnalysisJson, StrictJsonHasNoBareInfTokens)
{
    const std::string text = encodeAnalysis(sampleDoc());
    // The inf-OI row must encode as null, not the cache format's bare
    // inf token (python/jq reject that).
    EXPECT_EQ(text.find(":inf"), std::string::npos);
    EXPECT_EQ(text.find(":nan"), std::string::npos);
    EXPECT_NE(text.find("\"oi\":null"), std::string::npos);
    EXPECT_NE(text.find("\"schema_version\":4"), std::string::npos);
    EXPECT_NE(text.find("\"backend\":\"sim\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\":\"rfl-analysis\""),
              std::string::npos);
}

TEST(AnalysisJson, ProvenanceFieldsRoundTrip)
{
    CampaignAnalysis doc = sampleDoc();
    doc.kernels[0].backend = "perf";
    doc.kernels[0].quality = 0.75;
    doc.kernels[1].backend = "perf";
    doc.kernels[1].available = false;
    doc.kernels[1].quality = 0.0;

    const CampaignAnalysis back = decodeAnalysis(encodeAnalysis(doc));
    ASSERT_EQ(back.kernels.size(), 2u);
    EXPECT_EQ(back.kernels[0].backend, "perf");
    EXPECT_DOUBLE_EQ(back.kernels[0].quality, 0.75);
    EXPECT_TRUE(back.kernels[0].available);
    EXPECT_FALSE(back.kernels[1].available);
    EXPECT_DOUBLE_EQ(back.kernels[1].quality, 0.0);
}

TEST(AnalysisJson, DecodesV3DocumentsWithSimDefaults)
{
    // Committed baselines (bench/analysis_baseline.json) predate the
    // provenance fields; a v3 document must decode with every row an
    // available simulated one so old baselines keep diffing cleanly.
    std::string text = encodeAnalysis(sampleDoc());
    const auto strip = [&text](const std::string &needle) {
        for (size_t pos; (pos = text.find(needle)) != std::string::npos;)
            text.erase(pos, needle.size());
    };
    strip("\"backend\":\"sim\",\"quality\":1,\"available\":true,");
    const size_t v = text.find("\"schema_version\":4");
    ASSERT_NE(v, std::string::npos);
    text[v + std::string("\"schema_version\":").size()] = '3';
    ASSERT_EQ(text.find("backend"), std::string::npos);

    const CampaignAnalysis back = decodeAnalysis(text);
    ASSERT_EQ(back.kernels.size(), 2u);
    for (const KernelRow &r : back.kernels) {
        EXPECT_EQ(r.backend, "sim");
        EXPECT_DOUBLE_EQ(r.quality, 1.0);
        EXPECT_TRUE(r.available);
    }
}

TEST(AnalysisJson, DiffAfterRoundTripIsClean)
{
    const CampaignAnalysis doc = sampleDoc();
    const CampaignAnalysis back = decodeAnalysis(encodeAnalysis(doc));
    EXPECT_FALSE(diffAnalyses(doc, back).hasRegressions());
}

TEST(AnalysisReport, WritesFullArtifactSet)
{
    const CampaignAnalysis doc = sampleDoc();
    const ReportPaths paths =
        writeAnalysisReport(doc, outDir(), "sample");

    const std::string html = readFile(paths.html);
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos); // inline plot
    EXPECT_NE(html.find("triad n=4096 (cold)"), std::string::npos);
    EXPECT_NE(html.find("Phase trajectories"), std::string::npos);
    EXPECT_NE(html.find("binding ceiling"), std::string::npos);

    ASSERT_EQ(paths.svgs.size(), 1u);
    const std::string svg = readFile(paths.svgs[0]);
    EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
    EXPECT_NE(svg.find("triad n=4096 (cold)"), std::string::npos);
    EXPECT_NE(svg.find("ridge"), std::string::npos);
    EXPECT_NE(svg.find("(phases)"), std::string::npos);

    const CampaignAnalysis loaded = loadAnalysisFile(paths.json);
    EXPECT_EQ(loaded.kernels.size(), doc.kernels.size());
}

TEST(AnalysisReport, EmitPrintsAsciiAndTable)
{
    std::ostringstream os;
    emitAnalysis(sampleDoc(), outDir(), "sample_emit", os);
    const std::string text = os.str();
    EXPECT_NE(text.find("roof '='"), std::string::npos); // ASCII plot
    EXPECT_NE(text.find("binding ceiling"), std::string::npos);
    EXPECT_NE(text.find("wrote "), std::string::npos);
}

TEST(AnalysisSvg, SkipsUnplottablePoints)
{
    roofline::RooflineModel model;
    model.addComputeCeiling("peak", 10e9);
    model.addBandwidthCeiling("stream", 10e9);
    roofline::RooflinePlot plot("edge", model);
    plot.addPoint("good", 1.0, 1e9);

    std::vector<PhasePath> phases(1);
    phases[0].label = "path";
    phases[0].points = {
        {std::numeric_limits<double>::infinity(), 1e9, 1, 0, 1},
        {1.0, 2e9, 1, 1, 1},
        {2.0, 0.0, 0, 1, 0}, // zero perf: unplottable
        {4.0, 3e9, 1, 1, 1},
    };
    const std::string svg = renderRooflineSvg(plot, phases);
    EXPECT_NE(svg.find("good"), std::string::npos);
    EXPECT_NE(svg.find("path (phases)"), std::string::npos);
    // Only the two plottable phase points produce markers (r='3').
    size_t markers = 0, pos = 0;
    while ((pos = svg.find("r='3'", pos)) != std::string::npos) {
        ++markers;
        pos += 5;
    }
    EXPECT_EQ(markers, 2u);
}

TEST(AnalysisSvg, HardwarePointsRenderAsDiamonds)
{
    roofline::RooflineModel model;
    model.addComputeCeiling("peak", 10e9);
    model.addBandwidthCeiling("stream", 10e9);
    roofline::RooflinePlot plot("hw", model);
    plot.addPoint("triad n=4096 (cold)", 1.0, 1e9);
    plot.addPoint("triad n=4096 (cold) [hw]", 1.0, 8e8,
                  /*hardware=*/true);
    const std::string svg = renderRooflineSvg(plot, {});
    // The sim row keeps its circle glyph; the silicon row draws as a
    // diamond path in the hardware color so mixed plots read at a
    // glance.
    EXPECT_NE(svg.find("r='4.5'"), std::string::npos);
    EXPECT_NE(svg.find("#7b4bd6"), std::string::npos);
    EXPECT_NE(svg.find("[hw]"), std::string::npos);
    size_t circles = 0, pos = 0;
    while ((pos = svg.find("r='4.5'", pos)) != std::string::npos) {
        ++circles;
        pos += 7;
    }
    EXPECT_EQ(circles, 1u);
}

} // namespace
