/**
 * @file
 * The diff/regression engine: directional thresholds, missing-row
 * detection, and the inf-OI edge cases.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "analysis/diff.hh"

namespace
{

using namespace rfl;
using namespace rfl::analysis;

CampaignAnalysis
baseDoc()
{
    CampaignAnalysis doc;
    doc.campaign = "gate";
    Scenario s;
    s.machine = "m";
    s.variant = "v";
    s.model.addComputeCeiling("peak", 100e9);
    s.model.addBandwidthCeiling("stream", 10e9);
    doc.scenarios.push_back(s);

    KernelRow r;
    r.machine = "m";
    r.variant = "v";
    r.kernel = "triad";
    r.sizeLabel = "n=1024";
    r.protocol = "cold";
    r.flops = 1e9;
    r.trafficBytes = 1e9;
    r.seconds = 0.1;
    r.metrics = deriveMetrics(1.0, 1e10, s.model);
    doc.kernels.push_back(r);
    return doc;
}

TEST(AnalysisDiff, IdenticalDocumentsPass)
{
    const CampaignAnalysis doc = baseDoc();
    const DiffReport report = diffAnalyses(doc, doc);
    EXPECT_FALSE(report.hasRegressions());
    EXPECT_TRUE(report.missing.empty());
    EXPECT_TRUE(report.added.empty());
    // 2 scenario peaks + 4 kernel metrics compared.
    EXPECT_EQ(report.entries.size(), 6u);
}

TEST(AnalysisDiff, PerfDropGatesAndNamesKernelAndMetric)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.kernels[0].metrics.perf *= 0.9; // -10% > 5% threshold
    const DiffReport report = diffAnalyses(base, cur);
    ASSERT_TRUE(report.hasRegressions());
    EXPECT_EQ(report.regressionCount(), 1u);

    std::ostringstream os;
    report.print(os);
    EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
    EXPECT_NE(os.str().find("triad"), std::string::npos);
    EXPECT_NE(os.str().find("metric=perf"), std::string::npos);
}

TEST(AnalysisDiff, ImprovementsNeverGate)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.kernels[0].metrics.perf *= 1.5; // faster
    cur.kernels[0].seconds *= 0.5;      // shorter
    cur.kernels[0].trafficBytes *= 0.5; // less traffic
    EXPECT_FALSE(diffAnalyses(base, cur).hasRegressions());
}

TEST(AnalysisDiff, WithinThresholdPasses)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.kernels[0].metrics.perf *= 0.97; // -3% < 5% threshold
    EXPECT_FALSE(diffAnalyses(base, cur).hasRegressions());
}

TEST(AnalysisDiff, CustomThresholds)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.kernels[0].metrics.perf *= 0.97;
    DiffThresholds thr;
    thr.perfDrop = 0.01;
    EXPECT_TRUE(diffAnalyses(base, cur, thr).hasRegressions());
}

TEST(AnalysisDiff, MissingRowIsRegression)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.kernels.clear();
    const DiffReport report = diffAnalyses(base, cur);
    EXPECT_TRUE(report.hasRegressions());
    ASSERT_EQ(report.missing.size(), 1u);
    EXPECT_NE(report.missing[0].find("triad"), std::string::npos);
}

TEST(AnalysisDiff, AddedRowIsInformational)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    KernelRow extra = cur.kernels[0];
    extra.kernel = "daxpy";
    cur.kernels.push_back(extra);
    const DiffReport report = diffAnalyses(base, cur);
    EXPECT_FALSE(report.hasRegressions());
    ASSERT_EQ(report.added.size(), 1u);
    EXPECT_NE(report.added[0].find("daxpy"), std::string::npos);
}

TEST(AnalysisDiff, CeilingDropGates)
{
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    cur.scenarios[0].model = roofline::RooflineModel();
    cur.scenarios[0].model.addComputeCeiling("peak", 90e9); // -10%
    cur.scenarios[0].model.addBandwidthCeiling("stream", 10e9);
    const DiffReport report = diffAnalyses(base, cur);
    ASSERT_TRUE(report.hasRegressions());
    std::ostringstream os;
    report.print(os);
    EXPECT_NE(os.str().find("metric=peak_flops"), std::string::npos);
}

TEST(AnalysisDiff, InfinityHandling)
{
    const double inf = std::numeric_limits<double>::infinity();
    CampaignAnalysis base = baseDoc();
    base.kernels[0].metrics.oi = inf;

    // inf -> inf: no comparison recorded for oi, no regression.
    EXPECT_FALSE(diffAnalyses(base, base).hasRegressions());

    // inf -> finite: OI collapsed (traffic appeared) — a regression.
    CampaignAnalysis cur = base;
    cur.kernels[0].metrics.oi = 4.0;
    EXPECT_TRUE(diffAnalyses(base, cur).hasRegressions());

    // finite -> inf: traffic vanished — an improvement, never gates.
    EXPECT_FALSE(diffAnalyses(cur, base).hasRegressions());
}

TEST(AnalysisDiff, PhaseRowsGateLikeKernelRows)
{
    CampaignAnalysis base = baseDoc();
    PhaseRow phase;
    phase.machine = "m";
    phase.variant = "v";
    phase.trajectory.kernel = "triad";
    phase.trajectory.sizeLabel = "n=1024";
    phase.trajectory.protocol = "cold";
    phase.trajectory.period = 512;
    phase.trajectory.points = {{1.0, 1e10, 1e6, 1e6, 1e-4}};
    phase.trajectory.totalFlops = 1e6;
    phase.trajectory.totalTrafficBytes = 1e6;
    phase.trajectory.totalSeconds = 1e-4;
    base.phases.push_back(phase);

    // Identical docs: phase metrics compared, nothing gates.
    const DiffReport same = diffAnalyses(base, base);
    EXPECT_FALSE(same.hasRegressions());
    EXPECT_EQ(same.entries.size(), 10u); // 6 + 4 phase metrics

    // A vanished phase row is a regression (coverage shrank).
    CampaignAnalysis dropped = base;
    dropped.phases.clear();
    const DiffReport gone = diffAnalyses(base, dropped);
    EXPECT_TRUE(gone.hasRegressions());
    ASSERT_EQ(gone.missing.size(), 1u);
    EXPECT_NE(gone.missing[0].find("phases: triad"),
              std::string::npos);

    // A slower trajectory gates on its perf metric.
    CampaignAnalysis slower = base;
    slower.phases[0].trajectory.totalSeconds *= 1.25;
    std::ostringstream os;
    const DiffReport slow = diffAnalyses(base, slower);
    slow.print(os);
    EXPECT_TRUE(slow.hasRegressions());
    EXPECT_NE(os.str().find("phases: triad"), std::string::npos);
}

TEST(AnalysisDiff, TableListsEveryComparison)
{
    const CampaignAnalysis doc = baseDoc();
    const DiffReport report = diffAnalyses(doc, doc);
    EXPECT_EQ(report.table().rowCount(), report.entries.size());
}

TEST(AnalysisDiff, BackendIsPartOfTheRowKey)
{
    // A hardware row must never pair with the sim baseline row of the
    // same cell — a v3 baseline keeps diffing cleanly when the spec
    // later turns on backend = perf, however slow the silicon is.
    const CampaignAnalysis base = baseDoc();
    CampaignAnalysis cur = base;
    KernelRow hw = cur.kernels[0];
    hw.backend = "perf";
    hw.metrics.perf *= 0.5; // would gate hard if it matched the sim row
    cur.kernels.push_back(hw);

    const DiffReport report = diffAnalyses(base, cur);
    EXPECT_FALSE(report.hasRegressions());
    ASSERT_EQ(report.added.size(), 1u);
    EXPECT_NE(report.added[0].find("backend=perf"), std::string::npos);
}

TEST(HardwareDelta, PairsBackendsAndComputesRelativeDeltas)
{
    CampaignAnalysis doc = baseDoc();
    KernelRow hw = doc.kernels[0];
    hw.backend = "perf";
    hw.quality = 0.75;
    hw.metrics.perf = doc.kernels[0].metrics.perf * 0.8;
    hw.metrics.oi = doc.kernels[0].metrics.oi * 1.1;
    hw.seconds = doc.kernels[0].seconds * 1.25;
    doc.kernels.push_back(hw);

    const analysis::HardwareDeltaReport report = hardwareDelta(doc);
    EXPECT_TRUE(report.unmatched.empty());
    ASSERT_EQ(report.rows.size(), 1u);
    const analysis::HardwareDelta &d = report.rows[0];
    EXPECT_TRUE(d.available);
    EXPECT_DOUBLE_EQ(d.quality, 0.75);
    EXPECT_NEAR(d.perfRel, -0.2, 1e-12);
    EXPECT_NEAR(d.oiRel, 0.1, 1e-12);
    EXPECT_NEAR(d.secondsRel, 0.25, 1e-12);
    EXPECT_EQ(report.table().rowCount(), 1u);
}

TEST(HardwareDelta, GateIsDirectional)
{
    // Only the model-optimistic direction fails: silicon landing far
    // below the simulated prediction. Silicon beating the model is
    // news, not a regression.
    CampaignAnalysis doc = baseDoc();
    KernelRow hw = doc.kernels[0];
    hw.backend = "perf";
    hw.metrics.perf = doc.kernels[0].metrics.perf * 0.4; // -60%
    doc.kernels.push_back(hw);

    std::ostringstream os;
    EXPECT_EQ(hardwareDelta(doc).gate(0.5, os), 1u);
    EXPECT_NE(os.str().find("HW-DELTA"), std::string::npos);

    doc.kernels[1].metrics.perf = doc.kernels[0].metrics.perf * 2.0;
    std::ostringstream ok;
    EXPECT_EQ(hardwareDelta(doc).gate(0.5, ok), 0u);
    EXPECT_NE(ok.str().find("hardware delta gate: ok"),
              std::string::npos);
}

TEST(AnalysisDiff, UnavailableHardwareRowsAreNotedNotGated)
{
    // A baseline with real hardware rows diffed against a run on a
    // PMU-denied host pairs each perf row with its placeholder
    // (available=false, all metrics zero). The placeholder must read
    // as a named gap, never as a guaranteed perf regression.
    CampaignAnalysis base = baseDoc();
    KernelRow hw = base.kernels[0];
    hw.backend = "perf";
    base.kernels.push_back(hw);

    CampaignAnalysis cur = base;
    cur.kernels[1].available = false;
    cur.kernels[1].quality = 0.0;
    cur.kernels[1].metrics = DerivedMetrics{};
    cur.kernels[1].trafficBytes = 0.0;
    cur.kernels[1].seconds = 0.0;

    const DiffReport report = diffAnalyses(base, cur);
    EXPECT_FALSE(report.hasRegressions());
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("unavailable"), std::string::npos);
    EXPECT_NE(report.notes[0].find("backend=perf"), std::string::npos);
    std::ostringstream os;
    report.print(os);
    EXPECT_NE(os.str().find("note: hardware row unavailable"),
              std::string::npos);

    // The opposite direction (baseline captured without PMU access)
    // equally compares nothing — and the sim row still gates normally.
    EXPECT_FALSE(diffAnalyses(cur, base).hasRegressions());
    CampaignAnalysis slow = cur;
    slow.kernels[0].metrics.perf *= 0.5;
    EXPECT_TRUE(diffAnalyses(base, slow).hasRegressions());
}

TEST(HardwareDelta, UnavailableRowsAreNamedButNeverGate)
{
    // The CI container denies perf_event_open outright; the resulting
    // placeholder row must surface in the report as a named gap and
    // must never fail the gate.
    CampaignAnalysis doc = baseDoc();
    KernelRow hw = doc.kernels[0];
    hw.backend = "perf";
    hw.available = false;
    hw.quality = 0.0;
    hw.metrics = DerivedMetrics{};
    doc.kernels.push_back(hw);

    const analysis::HardwareDeltaReport report = hardwareDelta(doc);
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_FALSE(report.rows[0].available);
    std::ostringstream os;
    EXPECT_EQ(report.gate(0.5, os), 0u);
    EXPECT_NE(os.str().find("unavailable"), std::string::npos);
    EXPECT_NE(os.str().find("triad"), std::string::npos);
}

TEST(HardwareDelta, HardwareRowWithoutSimCounterpartIsUnmatched)
{
    CampaignAnalysis doc = baseDoc();
    doc.kernels[0].backend = "perf"; // perf-only campaign: no sim twin
    const analysis::HardwareDeltaReport report = hardwareDelta(doc);
    EXPECT_TRUE(report.rows.empty());
    ASSERT_EQ(report.unmatched.size(), 1u);
    EXPECT_NE(report.unmatched[0].find("triad"), std::string::npos);
    EXPECT_FALSE(report.empty());
}

TEST(HardwareDelta, SimOnlyDocumentIsEmpty)
{
    EXPECT_TRUE(hardwareDelta(baseDoc()).empty());
}

} // namespace
