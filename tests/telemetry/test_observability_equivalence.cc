/**
 * @file
 * Golden equivalence: the deep-observability layer (time-series
 * sampler, SIGPROF profiler, sim counters) must be a pure observer —
 * simulation results stay bit-identical with everything switched on.
 * The encoded Measurement string is the strictest equality available:
 * it round-trips every counter in the sim Snapshot plus the derived
 * performance numbers, so a single perturbed cache miss flips it.
 */

#include <string>

#include <gtest/gtest.h>

#include "campaign/serialize.hh"
#include "roofline/experiment.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/sim_counters.hh"
#include "telemetry/timeseries.hh"

namespace
{

using namespace rfl;

std::string
encodedMeasurementOf(const char *spec)
{
    roofline::Experiment exp;
    roofline::MeasureOptions opts;
    opts.repetitions = 1;
    return campaign::encodeMeasurement(exp.measureSpec(spec, opts));
}

TEST(ObservabilityEquivalence, SimResultsBitIdenticalUnderFullLoad)
{
    const char *const kSpec = "stencil3:n=262144";

    // Baseline: nothing observing.
    telemetry::setSimTelemetryEnabled(false);
    const std::string quiet = encodedMeasurementOf(kSpec);

    // Full observability: sim counters mirrored into the global
    // registry, a fast background sampler scraping it, and (when
    // compiled in) the SIGPROF profiler interrupting the drain loop
    // hundreds of times per second.
    telemetry::setSimTelemetryEnabled(true);
    telemetry::ensureGlobalSimCollector();
    telemetry::TimeSeriesOptions tsopts;
    tsopts.intervalSeconds = 0.005;
    tsopts.capacity = 32;
    telemetry::TimeSeriesSampler sampler(
        telemetry::Registry::global(), tsopts);
    sampler.start();
    const bool profiling = telemetry::Profiler::instance().start({});

    const std::string observed = encodedMeasurementOf(kSpec);

    if (profiling)
        telemetry::Profiler::instance().stop("equivalence");
    sampler.stop();
    telemetry::setSimTelemetryEnabled(false);

    // Bit-identical, not approximately equal: the sampler and the
    // profiler read, they never touch.
    EXPECT_EQ(quiet, observed);
    EXPECT_GT(sampler.samplesTaken(), 0u);
}

} // namespace
