/** @file Tests for the span tracer (DESIGN.md §11). */

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace
{

using rfl::telemetry::Span;
using rfl::telemetry::SpanRecord;
using rfl::telemetry::Tracer;
using rfl::telemetry::TraceScope;

TEST(Span, NoScopeMeansNoRecording)
{
    // Instrumentation stays in the code unconditionally; without a
    // TraceScope it must record nothing (and attr() is a no-op).
    Span s("orphan");
    s.attr("key", "value");
    EXPECT_FALSE(s.active());
}

TEST(Span, RecordsNameDurationAndAttrs)
{
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        Span s("work");
        s.attr("job", "triad");
        EXPECT_TRUE(s.active());
    }
    const std::vector<SpanRecord> spans = tracer.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "work");
    EXPECT_GT(spans[0].id, 0u);
    EXPECT_EQ(spans[0].parent, 0u);
    ASSERT_EQ(spans[0].attrs.size(), 1u);
    EXPECT_EQ(spans[0].attrs[0].first, "job");
    EXPECT_EQ(spans[0].attrs[0].second, "triad");
}

TEST(Span, NestedSpansFormATree)
{
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        Span root("campaign");
        {
            Span child("simulate");
            Span grandchild("drain");
            (void)grandchild;
        }
        Span sibling("encode");
        (void)sibling;
    }
    std::map<std::string, SpanRecord> byName;
    for (const SpanRecord &r : tracer.spans())
        byName[r.name] = r;
    ASSERT_EQ(byName.size(), 4u);
    EXPECT_EQ(byName["campaign"].parent, 0u);
    EXPECT_EQ(byName["simulate"].parent, byName["campaign"].id);
    EXPECT_EQ(byName["drain"].parent, byName["simulate"].id);
    EXPECT_EQ(byName["encode"].parent, byName["campaign"].id);
}

TEST(Span, ThreadsGetDenseDistinctTids)
{
    // The executor's shape: a root span on the submitting thread,
    // worker spans under per-task scopes on pool threads.
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        Span root("campaign");
        std::vector<std::thread> threads;
        for (int i = 0; i < 3; ++i) {
            threads.emplace_back([&tracer] {
                TraceScope workerScope(&tracer);
                Span s("job");
                (void)s;
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    std::map<uint32_t, int> byTid;
    for (const SpanRecord &r : tracer.spans())
        ++byTid[r.tid];
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(byTid.size(), 4u); // main + 3 workers, each its own row
}

TEST(Tracer, ChromeTraceRenderIsWellFormed)
{
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        Span s("work \"quoted\"\\");
        s.attr("k", "v");
    }
    const std::string json = tracer.renderChromeTrace();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Names with quotes/backslashes must be escaped, not emitted raw.
    EXPECT_NE(json.find("work \\\"quoted\\\"\\\\"),
              std::string::npos);
}

TEST(Tracer, JsonlStreamIsAnArrayWithOneEventPerLine)
{
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        for (int i = 0; i < 3; ++i) {
            Span s("e");
            (void)s;
        }
    }
    std::ostringstream os;
    tracer.writeTraceJsonl(os);
    const std::string text = os.str();
    // Loadable by chrome://tracing (top-level array)...
    EXPECT_EQ(text.front(), '[');
    // ...and greppable: each event object on its own line.
    size_t events = 0;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);)
        if (line.find("\"ph\":\"X\"") != std::string::npos)
            ++events;
    EXPECT_EQ(events, 3u);
}

TEST(Tracer, BufferedSpansFlushWhenScopeEnds)
{
    Tracer tracer;
    {
        TraceScope scope(&tracer);
        {
            Span s("buffered");
            (void)s;
        }
        // Still buffered in the scope's thread-local vector: the
        // tracer itself may not have seen it yet — but after the
        // scope closes it must.
    }
    EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, CapBoundsRetainedSpansAndCountsDrops)
{
    using rfl::telemetry::Registry;
    auto &dropped = Registry::global().counter(
        "rfl_trace_dropped_spans_total", "t");
    const uint64_t before = dropped.value();

    Tracer tracer(/*maxSpans=*/4);
    EXPECT_EQ(tracer.maxSpans(), 4u);
    {
        TraceScope scope(&tracer);
        for (int i = 0; i < 10; ++i) {
            Span s("s" + std::to_string(i));
            (void)s;
        }
    }
    // Memory bound by construction: the cap holds however many spans
    // were recorded, and every rejected span is accounted for — both
    // on the tracer and in the global counter.
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.droppedSpans(), 6u);
    EXPECT_EQ(dropped.value() - before, 6u);
    // Oldest kept: the trace's roots survive a runaway tail.
    EXPECT_EQ(tracer.spans()[0].name, "s0");
    EXPECT_EQ(tracer.spans()[3].name, "s3");
}

TEST(Tracer, DefaultCapIsLargeAndDropsNothingNormally)
{
    Tracer tracer;
    EXPECT_EQ(tracer.maxSpans(), Tracer::kDefaultMaxSpans);
    {
        TraceScope scope(&tracer);
        for (int i = 0; i < 2000; ++i) {
            Span s("e");
            (void)s;
        }
    }
    EXPECT_EQ(tracer.size(), 2000u);
    EXPECT_EQ(tracer.droppedSpans(), 0u);
}

} // namespace
