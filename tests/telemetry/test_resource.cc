/** @file Tests for per-thread resource accounting (DESIGN.md §14). */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/resource.hh"

namespace
{

using rfl::telemetry::ResourceDelta;
using rfl::telemetry::ScopedThreadUsage;
using rfl::telemetry::ThreadUsage;

/** Burn roughly @p ms milliseconds of CPU on the calling thread. */
void
burnCpu(int ms)
{
    std::atomic<uint64_t> sink{0};
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < until)
        sink.fetch_add(1, std::memory_order_relaxed);
}

TEST(Resource, SnapshotIsMonotonic)
{
    const ThreadUsage a = ThreadUsage::now();
    burnCpu(20);
    const ThreadUsage b = ThreadUsage::now();
    EXPECT_GE(b.utimeSeconds + b.stimeSeconds,
              a.utimeSeconds + a.stimeSeconds);
    EXPECT_GE(b.maxrssBytes, a.maxrssBytes);
}

TEST(Resource, ScopedDeltaSeesOwnCpuBurn)
{
    const ScopedThreadUsage usage;
    burnCpu(100);
    const ResourceDelta d = usage.delta();
    // 100 ms of spinning is at least tens of ms of thread CPU even on
    // a throttled CI box.
    EXPECT_GT(d.cpuSeconds(), 0.02);
    EXPECT_GT(d.maxrssBytes, 0u);
}

TEST(Resource, ThreadScopedDeltasDoNotSmear)
{
    // The whole point of RUSAGE_THREAD: a busy sibling must not be
    // billed to an idle thread's bracket, however many jobs overlap.
    std::atomic<bool> go{false};
    double idleCpu = -1.0, busyCpu = -1.0;

    std::thread busy([&] {
        while (!go.load())
            std::this_thread::yield();
        const ScopedThreadUsage usage;
        burnCpu(150);
        busyCpu = usage.delta().cpuSeconds();
    });
    std::thread idle([&] {
        while (!go.load())
            std::this_thread::yield();
        const ScopedThreadUsage usage;
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        idleCpu = usage.delta().cpuSeconds();
    });
    go.store(true);
    busy.join();
    idle.join();

    EXPECT_GT(busyCpu, 0.03);
    EXPECT_LT(idleCpu, 0.05); // sleeping thread billed ~nothing
    EXPECT_GT(busyCpu, idleCpu);
}

TEST(Resource, ConcurrentBracketsEachSeeTheirOwnWork)
{
    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    std::vector<double> cpu(kThreads, 0.0);
    for (int i = 0; i < kThreads; ++i) {
        workers.emplace_back([&cpu, i] {
            const ScopedThreadUsage usage;
            burnCpu(80);
            cpu[static_cast<size_t>(i)] = usage.delta().cpuSeconds();
        });
    }
    for (std::thread &t : workers)
        t.join();
    for (int i = 0; i < kThreads; ++i) {
        // Each bracket sees some of its own work but never the 4x
        // total. On a single-core box the 80 ms wall burn is split
        // four ways, so the lower bound stays deliberately loose.
        EXPECT_GT(cpu[static_cast<size_t>(i)], 0.004) << "thread " << i;
        EXPECT_LT(cpu[static_cast<size_t>(i)], 0.25) << "thread " << i;
    }
}

TEST(Resource, DeltaAddSumsFlowsAndMaxesLevels)
{
    ResourceDelta a;
    a.cpuUserSeconds = 1.0;
    a.cpuSystemSeconds = 0.5;
    a.maxrssBytes = 100;
    a.minorFaults = 10;
    a.majorFaults = 1;
    ResourceDelta b;
    b.cpuUserSeconds = 2.0;
    b.cpuSystemSeconds = 0.25;
    b.maxrssBytes = 80; // a smaller peak must not shrink the max
    b.minorFaults = 5;
    b.majorFaults = 0;

    a.add(b);
    EXPECT_DOUBLE_EQ(a.cpuUserSeconds, 3.0);
    EXPECT_DOUBLE_EQ(a.cpuSystemSeconds, 0.75);
    EXPECT_DOUBLE_EQ(a.cpuSeconds(), 3.75);
    EXPECT_EQ(a.maxrssBytes, 100u);
    EXPECT_EQ(a.minorFaults, 15u);
    EXPECT_EQ(a.majorFaults, 1u);
}

TEST(Resource, JsonIsWellFormedSnakeCase)
{
    ResourceDelta d;
    d.cpuUserSeconds = 0.125;
    d.maxrssBytes = 4096;
    const std::string json = d.json();
    EXPECT_NE(json.find("\"cpu_user_seconds\":0.125"),
              std::string::npos);
    EXPECT_NE(json.find("\"cpu_system_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"maxrss_bytes\":4096"), std::string::npos);
    EXPECT_NE(json.find("\"minor_faults\":"), std::string::npos);
    EXPECT_NE(json.find("\"major_faults\":"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

} // namespace
