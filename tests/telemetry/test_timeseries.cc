/** @file Tests for the metrics time-series sampler (DESIGN.md §14). */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"

namespace
{

using rfl::telemetry::Registry;
using rfl::telemetry::TimeSeriesOptions;
using rfl::telemetry::TimeSeriesSampler;

TimeSeriesOptions
smallOpts(size_t capacity)
{
    TimeSeriesOptions opts;
    opts.capacity = capacity;
    opts.intervalSeconds = 0.5;
    return opts;
}

TEST(TimeSeries, GaugeSampledAsValue)
{
    Registry reg;
    auto &g = reg.gauge("rfl_test_level", "t");
    TimeSeriesSampler sampler(reg, smallOpts(8));

    g.set(3.0);
    sampler.sampleNow(1.0);
    g.set(7.5);
    sampler.sampleNow(1.0);

    const std::vector<float> pts = sampler.points("rfl_test_level");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_FLOAT_EQ(pts[0], 3.0f);
    EXPECT_FLOAT_EQ(pts[1], 7.5f);
}

TEST(TimeSeries, CounterBecomesRate)
{
    Registry reg;
    auto &c = reg.counter("rfl_test_events_total", "t");
    TimeSeriesSampler sampler(reg, smallOpts(8));

    // First scrape only seeds the baseline — a counter's process-long
    // total must never be compressed into one interval's rate.
    c.inc(100);
    sampler.sampleNow(1.0);
    EXPECT_TRUE(sampler.points("rfl_test_events_total:rate").empty());

    c.inc(50);
    sampler.sampleNow(2.0); // 50 events over a 2 s interval
    c.inc(30);
    sampler.sampleNow(0.5); // 30 events over 0.5 s

    const std::vector<float> pts =
        sampler.points("rfl_test_events_total:rate");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_FLOAT_EQ(pts[0], 25.0f);
    EXPECT_FLOAT_EQ(pts[1], 60.0f);
}

TEST(TimeSeries, CounterResetClampsToZeroRate)
{
    Registry reg;
    auto &c = reg.counter("rfl_test_events_total", "t");
    TimeSeriesSampler sampler(reg, smallOpts(8));

    c.inc(100);
    sampler.sampleNow(1.0);
    c.mirror(10); // mirrored subsystem counter reset underneath us
    sampler.sampleNow(1.0);

    const std::vector<float> pts =
        sampler.points("rfl_test_events_total:rate");
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_FLOAT_EQ(pts[0], 0.0f); // clamped, not a huge negative rate
}

TEST(TimeSeries, HistogramBecomesQuantileSeries)
{
    Registry reg;
    auto &h = reg.histogram("rfl_test_seconds", "t");
    TimeSeriesSampler sampler(reg, smallOpts(8));

    for (int i = 0; i < 100; ++i)
        h.observe(0.001);
    sampler.sampleNow(1.0);

    const std::vector<float> p50 =
        sampler.points("rfl_test_seconds:p50");
    const std::vector<float> p99 =
        sampler.points("rfl_test_seconds:p99");
    ASSERT_EQ(p50.size(), 1u);
    ASSERT_EQ(p99.size(), 1u);
    EXPECT_GT(p50[0], 0.0f);
    EXPECT_GE(p99[0], p50[0]);
}

TEST(TimeSeries, RingWrapsAtCapacityKeepingNewest)
{
    Registry reg;
    auto &g = reg.gauge("rfl_test_level", "t");
    TimeSeriesSampler sampler(reg, smallOpts(4));

    for (int i = 1; i <= 10; ++i) {
        g.set(static_cast<double>(i));
        sampler.sampleNow(1.0);
        // The memory bound: never more points than capacity, at any
        // moment of the ring's life, before and after wraparound.
        EXPECT_LE(sampler.points("rfl_test_level").size(), 4u);
    }

    const std::vector<float> pts = sampler.points("rfl_test_level");
    ASSERT_EQ(pts.size(), 4u);
    // Oldest-first ordering of the newest 4 values.
    EXPECT_FLOAT_EQ(pts[0], 7.0f);
    EXPECT_FLOAT_EQ(pts[1], 8.0f);
    EXPECT_FLOAT_EQ(pts[2], 9.0f);
    EXPECT_FLOAT_EQ(pts[3], 10.0f);
}

TEST(TimeSeries, MaxSeriesCapDropsAndCounts)
{
    Registry reg;
    TimeSeriesOptions opts = smallOpts(4);
    opts.maxSeries = 3;
    TimeSeriesSampler sampler(reg, opts);

    for (int i = 0; i < 8; ++i)
        reg.gauge("rfl_test_g" + std::to_string(i), "t").set(1.0);
    sampler.sampleNow(1.0);
    sampler.sampleNow(1.0);

    // The cap includes rfl_series_dropped_total's own rate series, so
    // exactly maxSeries are materialized and the rest counted.
    EXPECT_EQ(sampler.seriesCount(), 3u);
    EXPECT_GT(reg.counter("rfl_series_dropped_total", "t").value(), 0u);
}

TEST(TimeSeries, SeriesJsonIsWellFormed)
{
    Registry reg;
    reg.gauge("rfl_test_level", "t").set(1.5);
    reg.counter("rfl_test_events_total", "t").inc(5);
    TimeSeriesSampler sampler(reg, smallOpts(8));
    sampler.sampleNow(1.0);
    sampler.sampleNow(1.0);

    const std::string json = sampler.renderSeriesJson();
    EXPECT_NE(json.find("\"kind\":\"rfl-series\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("rfl_test_level"), std::string::npos);
    EXPECT_NE(json.find("rfl_test_events_total:rate"),
              std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(TimeSeries, DashHtmlIsSelfContained)
{
    Registry reg;
    reg.gauge("rfl_queue_depth", "t").set(2.0);
    reg.counter("rfl_http_requests_total", "t").inc(3);
    TimeSeriesSampler sampler(reg, smallOpts(8));
    sampler.sampleNow(1.0);
    sampler.sampleNow(1.0);

    const std::string html = sampler.renderDashHtml();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("http-equiv=\"refresh\""), std::string::npos);
    EXPECT_NE(html.find("Queue depth"), std::string::npos);
    // Dependency-free by construction: no scripts, no external fetches.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(TimeSeries, BackgroundThreadStartStopIsIdempotent)
{
    Registry reg;
    reg.gauge("rfl_test_level", "t").set(1.0);
    TimeSeriesOptions opts;
    opts.intervalSeconds = 0.01;
    opts.capacity = 16;
    TimeSeriesSampler sampler(reg, opts);
    sampler.start();
    sampler.start(); // idempotent
    while (sampler.samplesTaken() < 3)
        std::this_thread::yield();
    sampler.stop();
    sampler.stop(); // idempotent
    const uint64_t taken = sampler.samplesTaken();
    EXPECT_GE(taken, 3u);
    EXPECT_LE(sampler.points("rfl_test_level").size(), 16u);
}

} // namespace
