/** @file Tests for the sampling profiler (DESIGN.md §14). */

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/profiler.hh"

namespace
{

using rfl::telemetry::CollapsedStack;
using rfl::telemetry::collapseStacks;
using rfl::telemetry::Profile;
using rfl::telemetry::Profiler;
using rfl::telemetry::ProfilerOptions;
using rfl::telemetry::renderFlamegraphSvg;
using rfl::telemetry::renderProfileJson;

TEST(Profiler, CollapseAggregatesIdenticalStacks)
{
    const std::vector<std::vector<std::string>> raw = {
        {"main", "run", "drain"},
        {"main", "run", "drain"},
        {"main", "run", "encode"},
        {"main", "idle"},
        {}, // empty stacks are skipped, not collapsed to ""
    };
    const std::vector<CollapsedStack> collapsed = collapseStacks(raw);
    ASSERT_EQ(collapsed.size(), 3u);
    // Sorted by count descending, ties alphabetical: deterministic.
    EXPECT_EQ(collapsed[0].stack, "main;run;drain");
    EXPECT_EQ(collapsed[0].count, 2u);
    EXPECT_EQ(collapsed[1].stack, "main;idle");
    EXPECT_EQ(collapsed[2].stack, "main;run;encode");
    EXPECT_EQ(collapsed[1].count + collapsed[2].count, 2u);
}

TEST(Profiler, ProfileJsonSchema)
{
    Profile p;
    p.label = "unit \"test\"";
    p.hz = 997;
    p.seconds = 1.25;
    p.samples = 3;
    p.dropped = 1;
    p.stacks = {{"a;b", 2}, {"a;c", 1}};

    const std::string json = renderProfileJson(p);
    EXPECT_NE(json.find("\"kind\":\"rfl-profile\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"hz\":997"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":3"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
    EXPECT_NE(json.find("\"stack\":\"a;b\",\"count\":2"),
              std::string::npos);
    EXPECT_NE(json.find("unit \\\"test\\\""), std::string::npos);
}

TEST(Profiler, FlamegraphLaysOutTrie)
{
    const std::vector<CollapsedStack> stacks = {
        {"main;run;drain", 6},
        {"main;run;encode", 2},
        {"main;idle", 2},
    };
    const std::string svg =
        renderFlamegraphSvg(stacks, "synthetic profile");
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("synthetic profile"), std::string::npos);
    EXPECT_NE(svg.find("10 samples"), std::string::npos);
    // Every frame gets a rect with an exact-count tooltip.
    EXPECT_NE(svg.find("drain — 6 samples"), std::string::npos);
    EXPECT_NE(svg.find("main — 10 samples"), std::string::npos);
    // XML-escaped content only (C++ symbols carry <> liberally).
    const std::string svg2 = renderFlamegraphSvg(
        {{"std::vector<int>::push_back", 1}}, "t");
    EXPECT_NE(svg2.find("std::vector&lt;int&gt;::push_back"),
              std::string::npos);
}

TEST(Profiler, FlamegraphOfNothingIsStillAnSvg)
{
    const std::string svg = renderFlamegraphSvg({}, "empty");
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("0 samples"), std::string::npos);
}

TEST(Profiler, StopWithoutStartIsEmpty)
{
    const Profile p = Profiler::instance().stop("never started");
    EXPECT_EQ(p.samples, 0u);
    EXPECT_TRUE(p.stacks.empty());
    EXPECT_EQ(p.label, "never started");
}

TEST(Profiler, LiveCaptureAttributesBusyLoop)
{
    if (!Profiler::compiledIn())
        GTEST_SKIP() << "built with -DRFL_PROFILER=OFF";

    ProfilerOptions opts;
    opts.hz = 997;
    ASSERT_TRUE(Profiler::instance().start(opts));
    EXPECT_FALSE(Profiler::instance().start(opts)) // second start fails
        << "profiler must refuse concurrent captures";
    EXPECT_TRUE(Profiler::instance().running());

    // Burn ~200 ms of CPU so SIGPROF has something to land on.
    std::atomic<uint64_t> sink{0};
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < until)
        sink.fetch_add(1, std::memory_order_relaxed);

    const Profile p = Profiler::instance().stop("busy loop");
    EXPECT_FALSE(Profiler::instance().running());
    // ~200 samples expected at 997 Hz over 200 ms of CPU; be lenient —
    // CI machines throttle — but some must have landed.
    EXPECT_GT(p.samples, 5u);
    EXPECT_FALSE(p.stacks.empty());
    uint64_t total = 0;
    for (const CollapsedStack &cs : p.stacks) {
        total += cs.count;
        // The signal path must have been stripped during symbolization.
        EXPECT_EQ(cs.stack.find("rflProfilerSignalHandler"),
                  std::string::npos);
    }
    EXPECT_LE(total, p.samples);

    // A second capture after stop() must work (state fully reset).
    ASSERT_TRUE(Profiler::instance().start(opts));
    const Profile p2 = Profiler::instance().stop("immediate");
    EXPECT_LE(p2.dropped, p2.samples + 1);
}

} // namespace
