/** @file Tests for the telemetry metrics registry (DESIGN.md §11). */

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"

namespace
{

using rfl::telemetry::Counter;
using rfl::telemetry::Gauge;
using rfl::telemetry::Histogram;
using rfl::telemetry::Labels;
using rfl::telemetry::Registry;

TEST(Counter, ConcurrentIncrementsSumExactly)
{
    // The registry's core claim: hot paths bump counters without locks
    // and no increment is ever lost. 8 threads x 100k relaxed adds
    // must sum to exactly 800k.
    Counter c;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, AddIsExactUnderContention)
{
    Gauge g;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&g] {
            for (int i = 0; i < kPerThread; ++i)
                g.add(1.0);
        });
    }
    for (std::thread &t : threads)
        t.join();
    // Every add is +1.0; sums of small integers in double are exact.
    EXPECT_EQ(g.value(), double(kThreads * kPerThread));
}

TEST(Histogram, ConcurrentObservationsSumExactly)
{
    Histogram h({1.0, 2.0, 4.0});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(double(t % 4)); // 0,1,2,3 across threads
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
    uint64_t bucketSum = 0;
    for (size_t i = 0; i <= h.bounds().size(); ++i)
        bucketSum += h.bucketCount(i);
    EXPECT_EQ(bucketSum, h.count());
    // sum() accumulates via a CAS loop, so it is exact too:
    // per thread kPerThread * (t % 4).
    double expected = 0.0;
    for (int t = 0; t < kThreads; ++t)
        expected += double(t % 4) * kPerThread;
    EXPECT_EQ(h.sum(), expected);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds)
{
    // Prometheus "le" semantics: an observation equal to a bound lands
    // in that bound's bucket, not the next one.
    Histogram h({1.0, 2.0, 4.0});
    h.observe(1.0);
    h.observe(2.0);
    h.observe(4.0);
    h.observe(5.0); // +Inf overflow
    EXPECT_EQ(h.bucketCount(0), 1u); // <= 1
    EXPECT_EQ(h.bucketCount(1), 1u); // <= 2
    EXPECT_EQ(h.bucketCount(2), 1u); // <= 4
    EXPECT_EQ(h.bucketCount(3), 1u); // +Inf
}

TEST(Histogram, QuantileEdges)
{
    Histogram h({1.0, 2.0, 4.0});
    EXPECT_EQ(h.quantile(0.5), 0.0); // empty

    // 10 observations uniform in (0,1]: every quantile interpolates
    // inside the first bucket (lower edge 0).
    for (int i = 1; i <= 10; ++i)
        h.observe(i / 10.0);
    // rank r = max(1, ceil(q*count)); q=0 still targets rank 1.
    EXPECT_GT(h.quantile(0.0), 0.0);
    EXPECT_LE(h.quantile(0.0), 1.0);
    // q=1.0 targets rank 10 = all of bucket 0 -> its upper bound.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
    // Median rank 5 of 10 in a bucket spanning [0,1]: halfway.
    EXPECT_NEAR(h.quantile(0.5), 0.5, 1e-12);
}

TEST(Histogram, QuantileInfBucketReportsHighestFiniteBound)
{
    Histogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 10; ++i)
        h.observe(100.0); // all +Inf
    // Documented floor: values in the overflow bucket report the
    // highest finite bound rather than inventing an estimate.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
}

TEST(Registry, RegistrationIsIdempotentByNameAndLabels)
{
    Registry reg;
    Counter &a = reg.counter("rfl_test_events_total", "events");
    Counter &b = reg.counter("rfl_test_events_total", "events");
    EXPECT_EQ(&a, &b);

    Counter &x = reg.counter("rfl_test_batches_total", "b",
                             Labels{{"cause", "drain"}});
    Counter &y = reg.counter("rfl_test_batches_total", "b",
                             Labels{{"cause", "capacity"}});
    EXPECT_NE(&x, &y);
}

TEST(Registry, PrometheusRenderCarriesTypeHelpAndLabels)
{
    Registry reg;
    reg.counter("rfl_test_events_total", "total events").inc(3);
    reg.gauge("rfl_test_depth", "queue depth").set(2.5);
    reg.counter("rfl_test_batches_total", "flushes",
                Labels{{"cause", "drain"}})
        .inc(7);
    // Binary-exact bounds so the %.17g exposition prints them bare.
    Histogram &h = reg.histogram("rfl_test_seconds", "latency", {},
                                 {0.25, 1.0});
    h.observe(0.05);
    h.observe(5.0);

    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# TYPE rfl_test_events_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# HELP rfl_test_events_total total events"),
              std::string::npos);
    EXPECT_NE(text.find("rfl_test_events_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE rfl_test_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("rfl_test_depth 2.5"), std::string::npos);
    EXPECT_NE(
        text.find("rfl_test_batches_total{cause=\"drain\"} 7"),
        std::string::npos);
    // Histogram expands to cumulative buckets + _sum + _count.
    EXPECT_NE(text.find("# TYPE rfl_test_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("rfl_test_seconds_bucket{le=\"0.25\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("rfl_test_seconds_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("rfl_test_seconds_count 2"),
              std::string::npos);
}

TEST(Registry, JsonGroupingFollowsNamingConvention)
{
    // rfl_<group>_<rest>[_total] -> {"<group>":{"<rest>":value}} —
    // the exact shape /statsz has always served.
    Registry reg;
    reg.counter("rfl_queue_executed_total", "x").inc(4);
    reg.gauge("rfl_queue_depth", "x").set(1);
    reg.counter("rfl_cache_hits_total", "x").inc(9);

    const std::string json = reg.renderJsonGrouped();
    EXPECT_NE(json.find("\"queue\":{"), std::string::npos);
    EXPECT_NE(json.find("\"executed\":4"), std::string::npos);
    EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
    EXPECT_NE(json.find("\"cache\":{"), std::string::npos);
    EXPECT_NE(json.find("\"hits\":9"), std::string::npos);
    // Strict JSON: no trailing commas, balanced braces.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Registry, CollectorsRunOnRenderAndDeregisterWithHandle)
{
    Registry reg;
    Counter &c = reg.counter("rfl_test_mirrored_total", "mirrored");
    int runs = 0;
    {
        auto handle = reg.addCollector([&] {
            ++runs;
            c.mirror(42);
        });
        (void)reg.renderJsonGrouped();
        EXPECT_EQ(runs, 1);
        EXPECT_EQ(c.value(), 42u);
    }
    // Handle destroyed: the collector must not fire again (it captures
    // locals that are about to go out of scope in real subsystems).
    (void)reg.renderPrometheus();
    EXPECT_EQ(runs, 1);
}

TEST(Registry, MirrorMakesLatestInstanceWin)
{
    // The service pattern: tests construct several JobQueues against
    // the one global registry; each mirrors absolute totals, so the
    // latest instance's numbers — not a sum across instances — are
    // what a scrape reports.
    Registry reg;
    Counter &c = reg.counter("rfl_test_executed_total", "x");
    c.mirror(5); // first instance's lifetime total
    c.mirror(2); // a newer instance starts over
    EXPECT_EQ(c.value(), 2u);
}

} // namespace
