/** @file Tests for the PMU event model and backends. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/daxpy.hh"
#include "kernels/engine.hh"
#include "pmu/backend.hh"
#include "pmu/perf_backend.hh"
#include "pmu/sim_backend.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::pmu;

TEST(Counts, DefaultUnsupportedAndZero)
{
    Counts c;
    for (EventId id : allEvents()) {
        EXPECT_FALSE(c.supported(id));
        EXPECT_EQ(c.get(id), 0u);
    }
    EXPECT_DOUBLE_EQ(c.seconds(), 0.0);
}

TEST(Counts, SetGetRoundTrip)
{
    Counts c;
    c.set(EventId::Cycles, 123);
    EXPECT_TRUE(c.supported(EventId::Cycles));
    EXPECT_EQ(c.get(EventId::Cycles), 123u);
    EXPECT_FALSE(c.supported(EventId::Instructions));
}

TEST(Counts, FlopsWeighting)
{
    Counts c;
    c.set(EventId::FpScalarDouble, 10);
    c.set(EventId::Fp128PackedDouble, 5);
    c.set(EventId::Fp256PackedDouble, 3);
    c.set(EventId::Fp512PackedDouble, 1);
    // 10*1 + 5*2 + 3*4 + 1*8 = 40.
    EXPECT_DOUBLE_EQ(c.flops(), 40.0);
}

TEST(Counts, TrafficAndIntensity)
{
    Counts c;
    c.set(EventId::ImcCasReads, 100);
    c.set(EventId::ImcCasWrites, 50);
    c.set(EventId::FpScalarDouble, 4800);
    EXPECT_DOUBLE_EQ(c.trafficBytes(64), 150.0 * 64);
    EXPECT_DOUBLE_EQ(c.operationalIntensity(64), 4800.0 / 9600.0);
    c.setSeconds(2.0);
    EXPECT_DOUBLE_EQ(c.flopsPerSecond(), 2400.0);
}

TEST(Counts, ZeroTrafficGivesInfiniteIntensity)
{
    Counts c;
    c.set(EventId::FpScalarDouble, 10);
    c.set(EventId::ImcCasReads, 0);
    c.set(EventId::ImcCasWrites, 0);
    EXPECT_TRUE(std::isinf(c.operationalIntensity()));
}

TEST(Counts, SubtractClampedNeverUnderflows)
{
    Counts a, b;
    a.set(EventId::Cycles, 5);
    b.set(EventId::Cycles, 9); // overhead exceeded the measurement
    a.setSeconds(1.0);
    b.setSeconds(2.0);
    const Counts d = a.subtractClamped(b);
    EXPECT_EQ(d.get(EventId::Cycles), 0u);
    EXPECT_DOUBLE_EQ(d.seconds(), 0.0);
}

TEST(Counts, DifferencePropagatesSupportIntersection)
{
    Counts a, b;
    a.set(EventId::Cycles, 10);
    a.set(EventId::Instructions, 20);
    b.set(EventId::Cycles, 4);
    const Counts d = a - b;
    EXPECT_TRUE(d.supported(EventId::Cycles));
    EXPECT_EQ(d.get(EventId::Cycles), 6u);
    EXPECT_FALSE(d.supported(EventId::Instructions));
}

TEST(Counts, QualityDefaultsToPerfect)
{
    Counts c;
    for (EventId id : allEvents()) {
        EXPECT_DOUBLE_EQ(c.quality(id), 1.0) << eventName(id);
        EXPECT_FALSE(c.derived(id)) << eventName(id);
    }
    EXPECT_DOUBLE_EQ(c.minQuality(), 1.0);
}

TEST(Counts, MinQualityCoversOnlySupportedEvents)
{
    Counts c;
    c.set(EventId::Cycles, 100);
    c.set(EventId::Instructions, 200);
    c.setQuality(EventId::Cycles, 0.25);
    // An unsupported event's quality must not drag the minimum down.
    c.setQuality(EventId::L3Misses, 0.01);
    EXPECT_DOUBLE_EQ(c.minQuality(), 0.25);
}

TEST(Counts, DifferencePropagatesWorstQualityAndDerivation)
{
    Counts a, b;
    a.set(EventId::Cycles, 10);
    a.setQuality(EventId::Cycles, 0.5);
    a.markDerived(EventId::Cycles);
    b.set(EventId::Cycles, 4);
    b.setQuality(EventId::Cycles, 0.8);
    const Counts d = a - b;
    EXPECT_DOUBLE_EQ(d.quality(EventId::Cycles), 0.5);
    EXPECT_TRUE(d.derived(EventId::Cycles));
}

TEST(Counts, SubtractClampedPropagatesQuality)
{
    Counts a, overhead;
    a.set(EventId::Instructions, 100);
    a.setQuality(EventId::Instructions, 0.9);
    overhead.set(EventId::Instructions, 10);
    overhead.setQuality(EventId::Instructions, 0.3);
    const Counts d = a.subtractClamped(overhead);
    EXPECT_EQ(d.get(EventId::Instructions), 90u);
    EXPECT_DOUBLE_EQ(d.quality(EventId::Instructions), 0.3);
}

TEST(Events, ParseEventNameRoundTrips)
{
    for (EventId id : allEvents()) {
        EventId out = EventId::NumEvents;
        ASSERT_TRUE(parseEventName(eventName(id), out))
            << eventName(id);
        EXPECT_EQ(out, id);
    }
    EventId out = EventId::NumEvents;
    EXPECT_FALSE(parseEventName("no_such_event", out));
}

TEST(PerfBackend, ParseEventMapAcceptsDecimalAndHex)
{
    std::vector<EventMapping> out;
    std::string err;
    ASSERT_TRUE(PerfEventBackend::parseEventMap(
        "cycles=4:0x3c, instructions=4:192", out, &err))
        << err;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, EventId::Cycles);
    EXPECT_EQ(out[0].type, 4u);
    EXPECT_EQ(out[0].config, 0x3cu);
    EXPECT_TRUE(out[0].fromEnv);
    EXPECT_EQ(out[1].id, EventId::Instructions);
    EXPECT_EQ(out[1].config, 192u);
}

TEST(PerfBackend, ParseEventMapRejectsMalformedEntries)
{
    std::vector<EventMapping> out;
    std::string err;
    EXPECT_FALSE(
        PerfEventBackend::parseEventMap("cycles=banana", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(
        PerfEventBackend::parseEventMap("bogus_event=4:1", out, &err));
    EXPECT_FALSE(
        PerfEventBackend::parseEventMap("cycles4:1", out, &err));
}

TEST(PerfBackend, EventMapOverridesDefaultsByEventId)
{
    // Overriding cycles must replace the generic mapping, not add a
    // second cycles entry; a new event appends.
    const char *saved = std::getenv("RFL_PERF_EVENTS");
    setenv("RFL_PERF_EVENTS", "cycles=4:0x3c,imc_cas_reads=18:0x104",
           1);
    const std::vector<EventMapping> maps =
        PerfEventBackend::eventMappings();
    if (saved != nullptr)
        setenv("RFL_PERF_EVENTS", saved, 1);
    else
        unsetenv("RFL_PERF_EVENTS");

    size_t cycles_entries = 0;
    bool cas_seen = false;
    for (const EventMapping &m : maps) {
        if (m.id == EventId::Cycles) {
            ++cycles_entries;
            EXPECT_EQ(m.type, 4u);
            EXPECT_EQ(m.config, 0x3cu);
            EXPECT_TRUE(m.fromEnv);
        }
        if (m.id == EventId::ImcCasReads) {
            cas_seen = true;
            EXPECT_EQ(m.type, 18u);
        }
    }
    EXPECT_EQ(cycles_entries, 1u);
    EXPECT_TRUE(cas_seen);
}

TEST(PerfBackend, ProbeShapeIsConsistent)
{
    const PmuProbe probe = PerfEventBackend::probe();
    EXPECT_FALSE(probe.events.empty());
    EXPECT_EQ(static_cast<size_t>(probe.liveCount() +
                                  probe.deadCount()),
              probe.events.size());
    // available must agree with per-event liveness and the backend's
    // own static answer.
    EXPECT_EQ(probe.available, probe.liveCount() > 0);
    EXPECT_EQ(probe.available, PerfEventBackend::available());
    // paranoid: -2 (unreadable) or a kernel value in [-1, 4].
    EXPECT_GE(probe.paranoid, -2);
    EXPECT_LE(probe.paranoid, 4);
}

TEST(Events, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (EventId id : allEvents()) {
        const std::string name = eventName(id);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
        EXPECT_FALSE(std::string(eventDescription(id)).empty());
    }
    EXPECT_EQ(names.size(), static_cast<size_t>(numEvents));
}

class SimBackendTest : public ::testing::Test
{
  protected:
    static sim::MachineConfig
    quiet()
    {
        // Prefetchers off: every count in these tests is exact.
        sim::MachineConfig cfg = sim::MachineConfig::defaultPlatform();
        cfg.l1Prefetcher.kind = sim::PrefetcherKind::None;
        cfg.l2Prefetcher.kind = sim::PrefetcherKind::None;
        return cfg;
    }

    SimBackendTest() : machine_(quiet()), backend_(machine_) {}

    sim::Machine machine_;
    SimBackend backend_;
};

TEST_F(SimBackendTest, SupportsEverything)
{
    for (EventId id : allEvents())
        EXPECT_TRUE(backend_.supports(id)) << eventName(id);
    EXPECT_EQ(backend_.name(), "sim");
}

TEST_F(SimBackendTest, RegionCapturesExactCounts)
{
    backend_.begin();
    machine_.retireFp(0, sim::VecWidth::W4, true, 100); // counter +200
    machine_.load(0, 0x10000, 8);
    const Counts c = backend_.end();
    EXPECT_EQ(c.get(EventId::Fp256PackedDouble), 200u);
    EXPECT_DOUBLE_EQ(c.flops(), 800.0);
    EXPECT_EQ(c.get(EventId::ImcCasReads), 1u);
    EXPECT_GT(c.seconds(), 0.0);
    EXPECT_GT(c.get(EventId::Cycles), 0u);
}

TEST_F(SimBackendTest, ActivityOutsideRegionIsExcluded)
{
    machine_.retireFp(0, sim::VecWidth::Scalar, false, 55);
    backend_.begin();
    const Counts c = backend_.end();
    EXPECT_DOUBLE_EQ(c.flops(), 0.0);
}

TEST_F(SimBackendTest, RegionRaiiFinishes)
{
    {
        Region region(backend_);
        machine_.retireFp(0, sim::VecWidth::Scalar, false, 7);
        const Counts &c = region.finish();
        EXPECT_DOUBLE_EQ(c.flops(), 7.0);
        // finish() is idempotent.
        EXPECT_DOUBLE_EQ(region.finish().flops(), 7.0);
    }
    // Destructor path: must not crash when not finished explicitly.
    {
        Region region(backend_);
    }
}

TEST_F(SimBackendTest, DaxpyEndToEndCounts)
{
    kernels::Daxpy daxpy(4096);
    daxpy.init(1);
    machine_.reset();
    backend_.begin();
    kernels::SimEngine e(machine_, 0, 4, true);
    daxpy.run(e, 0, 1);
    const Counts c = backend_.end();
    EXPECT_DOUBLE_EQ(c.flops(), 2.0 * 4096);
    EXPECT_GT(c.trafficBytes(64), 0.0);
}

TEST(PerfBackend, GracefulWhenUnavailable)
{
    // In the build container perf_event_open is typically forbidden.
    // Whatever the environment says, construction must not crash and the
    // region protocol must produce a wall-clock time.
    if (PerfEventBackend::available())
        GTEST_SKIP() << "perf available here; covered by manual runs";
    PerfEventBackend backend;
    backend.begin();
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + 1.0;
    const Counts c = backend.end();
    EXPECT_GT(c.seconds(), 0.0);
    EXPECT_EQ(backend.name(), "perf_event");
}

TEST(PerfBackend, CountsCyclesWhenAvailable)
{
    if (!PerfEventBackend::available())
        GTEST_SKIP() << "perf_event_open not permitted here";
    PerfEventBackend backend;
    ASSERT_TRUE(backend.supports(EventId::Cycles));
    backend.begin();
    volatile double x = 0;
    for (int i = 0; i < 1000000; ++i)
        x = x + 1.0;
    const Counts c = backend.end();
    EXPECT_GT(c.get(EventId::Cycles), 0u);
}

} // namespace
