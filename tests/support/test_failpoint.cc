/** @file Tests for the named-failpoint fault-injection registry. */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "support/cancel.hh"
#include "support/failpoint.hh"

namespace
{

namespace failpoint = rfl::failpoint;

/** Every test leaves the global registry clean. */
class Failpoint : public ::testing::Test
{
  protected:
    void TearDown() override { failpoint::disarmAll(); }
};

TEST_F(Failpoint, UnarmedFiresNothing)
{
    EXPECT_FALSE(failpoint::active());
    EXPECT_FALSE(RFL_FAILPOINT("nothing.armed.here"));
}

TEST_F(Failpoint, ErrorActionTriggersAndCounts)
{
    const uint64_t before = failpoint::triggerCount("t.err");
    ASSERT_TRUE(failpoint::arm("t.err", "error"));
    EXPECT_TRUE(failpoint::active());
    EXPECT_TRUE(RFL_FAILPOINT("t.err"));
    EXPECT_TRUE(RFL_FAILPOINT("t.err"));
    EXPECT_EQ(failpoint::triggerCount("t.err"), before + 2);
    // Other names stay dark while one is armed.
    EXPECT_FALSE(RFL_FAILPOINT("t.other"));
}

TEST_F(Failpoint, ThrowActionThrowsFailpointError)
{
    ASSERT_TRUE(failpoint::arm("t.throw", "throw"));
    EXPECT_THROW(RFL_FAILPOINT("t.throw"), failpoint::FailpointError);
}

TEST_F(Failpoint, SleepActionDelays)
{
    ASSERT_TRUE(failpoint::arm("t.sleep", "sleep(30)"));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(RFL_FAILPOINT("t.sleep")); // sleep is not an error
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(ms, 25.0);
}

TEST_F(Failpoint, SleepHonorsCancellation)
{
    // A bound, already-expired deadline cuts an injected stall short:
    // the sliced sleep polls the thread's cancel token.
    ASSERT_TRUE(failpoint::arm("t.stall", "sleep(60000)"));
    rfl::CancelToken token;
    token.setDeadlineIn(0.05);
    rfl::CancelScope scope(&token);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(RFL_FAILPOINT("t.stall"), rfl::TimedOutError);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 5.0) << "stall outlived its deadline";
}

TEST_F(Failpoint, CountModifierLimitsTriggers)
{
    ASSERT_TRUE(failpoint::arm("t.count", "error:count=2"));
    EXPECT_TRUE(RFL_FAILPOINT("t.count"));
    EXPECT_TRUE(RFL_FAILPOINT("t.count"));
    EXPECT_FALSE(RFL_FAILPOINT("t.count")) << "count budget spent";
    EXPECT_EQ(failpoint::triggerCount("t.count"), 2u);
}

TEST_F(Failpoint, ProbabilityZeroNeverTriggersOneAlwaysDoes)
{
    ASSERT_TRUE(failpoint::arm("t.never", "error:p=0"));
    ASSERT_TRUE(failpoint::arm("t.always", "error:p=1"));
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(RFL_FAILPOINT("t.never"));
        EXPECT_TRUE(RFL_FAILPOINT("t.always"));
    }
}

TEST_F(Failpoint, ProbabilisticStreamIsDeterministic)
{
    // Same name, same evaluation sequence -> same trigger pattern
    // (the per-failpoint stream is seeded by the name): chaos
    // failures reproduce.
    std::vector<bool> first;
    ASSERT_TRUE(failpoint::arm("t.coin", "error:p=0.5"));
    for (int i = 0; i < 64; ++i)
        first.push_back(RFL_FAILPOINT("t.coin"));
    failpoint::disarm("t.coin");
    ASSERT_TRUE(failpoint::arm("t.coin", "error:p=0.5"));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(RFL_FAILPOINT("t.coin"), first[static_cast<size_t>(i)]);
    // And it is a real coin, not constant.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(Failpoint, OffActionAndDisarm)
{
    ASSERT_TRUE(failpoint::arm("t.off", "off"));
    EXPECT_FALSE(RFL_FAILPOINT("t.off"));
    ASSERT_TRUE(failpoint::arm("t.on", "error"));
    failpoint::disarm("t.on");
    EXPECT_FALSE(RFL_FAILPOINT("t.on"));
}

TEST_F(Failpoint, MalformedSpecsRejectedWithError)
{
    std::string err;
    EXPECT_FALSE(failpoint::arm("t.bad", "explode", &err));
    EXPECT_NE(err.find("unknown action"), std::string::npos) << err;
    EXPECT_FALSE(failpoint::arm("t.bad", "error:p=2", &err));
    EXPECT_FALSE(failpoint::arm("t.bad", "error:count=0", &err));
    EXPECT_FALSE(failpoint::arm("t.bad", "sleep(abc)", &err));
    EXPECT_FALSE(failpoint::active());
}

TEST_F(Failpoint, ArmFromEnvParsesListSkipsMalformed)
{
    ::setenv("RFL_TEST_FAILPOINTS",
             "a.one=error,bogus-entry,b.two=sleep(5):count=3,=error",
             1);
    EXPECT_EQ(failpoint::armFromEnv("RFL_TEST_FAILPOINTS"), 2);
    const auto names = failpoint::armedNames();
    EXPECT_EQ(names.size(), 2u);
    EXPECT_TRUE(RFL_FAILPOINT("a.one"));
    ::unsetenv("RFL_TEST_FAILPOINTS");
}

} // namespace
