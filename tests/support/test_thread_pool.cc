/** @file Tests for the campaign executor's host thread pool. */

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "support/thread_pool.hh"

namespace
{

using rfl::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, WaitCoversTasksSubmittedByTasks)
{
    // The executor's pattern: a finishing job submits its dependents.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &ran] {
            ++ran;
            pool.submit([&ran] { ++ran; });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&ran] { ++ran; });
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, TaskExceptionRethrownOnWait)
{
    // Regression: a throwing task used to unwind the worker loop and
    // std::terminate the process. The submitter must see it instead.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    try {
        pool.wait();
        FAIL() << "wait() did not rethrow the task's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task failed");
    }
}

TEST(ThreadPool, OtherTasksStillRunWhenOneThrows)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&ran, i] {
            if (i == 7)
                throw std::runtime_error("one bad task");
            ++ran;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 19);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    // The first wait() collects the failure; the pool then behaves as
    // if freshly built — the service job queue reuses pools this way.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait(); // must not rethrow the already-collected exception
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, FirstExceptionWins)
{
    ThreadPool pool(1); // sequential: deterministic first thrower
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::runtime_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPool, ConcurrentThrowersCaptureOneSwallowRest)
{
    // Many tasks throwing at once from different workers: exactly one
    // exception surfaces at wait(), the rest are swallowed without
    // terminating, and the pool stays usable.
    ThreadPool pool(4);
    std::atomic<int> threw{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&threw, i] {
            ++threw;
            throw std::runtime_error("concurrent #" +
                                     std::to_string(i));
        });
    }
    int caught = 0;
    try {
        pool.wait();
    } catch (const std::runtime_error &e) {
        ++caught;
        EXPECT_EQ(std::string(e.what()).rfind("concurrent #", 0), 0u)
            << "unexpected exception: " << e.what();
    }
    EXPECT_EQ(caught, 1);
    EXPECT_EQ(threw.load(), 16);

    // The swallowed failures must not resurface on the next cycle.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DestructorSwallowsUncollectedException)
{
    // A pool destroyed without a final wait() must not terminate.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never collected"); });
    // Destructor runs here.
}

TEST(ThreadPool, SingleThreadPoolIsSequential)
{
    // With one worker, tasks run in submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

} // namespace
