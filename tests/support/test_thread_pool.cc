/** @file Tests for the campaign executor's host thread pool. */

#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "support/thread_pool.hh"

namespace
{

using rfl::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, WaitCoversTasksSubmittedByTasks)
{
    // The executor's pattern: a finishing job submits its dependents.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &ran] {
            ++ran;
            pool.submit([&ran] { ++ran; });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&ran] { ++ran; });
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, SingleThreadPoolIsSequential)
{
    // With one worker, tasks run in submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

} // namespace
