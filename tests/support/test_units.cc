/** @file Unit tests for formatting/parsing helpers. */

#include <gtest/gtest.h>

#include "support/units.hh"

namespace
{

using namespace rfl;

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(20.0 * 1024 * 1024), "20.00 MiB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

TEST(Units, FormatFlopRate)
{
    EXPECT_EQ(formatFlopRate(38.4e9), "38.40 Gflop/s");
    EXPECT_EQ(formatFlopRate(1.0e6), "1.00 Mflop/s");
}

TEST(Units, FormatByteRate)
{
    EXPECT_EQ(formatByteRate(14.0e9), "14.00 GB/s");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(2.5e-9), "2.5 ns");
    EXPECT_EQ(formatSeconds(3.0e-6), "3.00 us");
    EXPECT_EQ(formatSeconds(4.2e-3), "4.20 ms");
    EXPECT_EQ(formatSeconds(1.75), "1.750 s");
}

TEST(Units, ParseSizePlain)
{
    EXPECT_EQ(parseSize("64"), 64u);
    EXPECT_EQ(parseSize("0"), 0u);
}

TEST(Units, ParseSizeSuffixes)
{
    EXPECT_EQ(parseSize("32k"), 32u * 1024);
    EXPECT_EQ(parseSize("32K"), 32u * 1024);
    EXPECT_EQ(parseSize("20M"), 20u * 1024 * 1024);
    EXPECT_EQ(parseSize("2G"), 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(parseSize("1.5k"), 1536u);
}

TEST(UnitsDeath, ParseSizeGarbageIsFatal)
{
    EXPECT_EXIT(parseSize("abc"), ::testing::ExitedWithCode(1), "fatal");
    EXPECT_EXIT(parseSize("12q"), ::testing::ExitedWithCode(1), "fatal");
    EXPECT_EXIT(parseSize(""), ::testing::ExitedWithCode(1), "fatal");
}

TEST(Units, FormatSig)
{
    EXPECT_EQ(formatSig(3.14159, 3), "3.14");
    EXPECT_EQ(formatSig(1234567.0, 4), "1.235e+06");
}

} // namespace
