/** @file Tests for retry-with-backoff and cooperative cancellation. */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "support/cancel.hh"
#include "support/retry.hh"

namespace
{

using rfl::CancelScope;
using rfl::CancelToken;
using rfl::RetryPolicy;
using rfl::retryWithBackoff;
using rfl::TimedOutError;

RetryPolicy
fastPolicy(int attempts)
{
    RetryPolicy p;
    p.attempts = attempts;
    p.baseDelayMs = 1.0;
    p.maxDelayMs = 4.0;
    return p;
}

TEST(Retry, FirstTrySuccessRunsOnce)
{
    int calls = 0;
    EXPECT_TRUE(retryWithBackoff("test-first", fastPolicy(3), [&] {
        ++calls;
        return true;
    }));
    EXPECT_EQ(calls, 1);
}

TEST(Retry, RecoversWithinBudget)
{
    int calls = 0;
    EXPECT_TRUE(retryWithBackoff("test-recover", fastPolicy(3), [&] {
        return ++calls == 3;
    }));
    EXPECT_EQ(calls, 3);
}

TEST(Retry, ExhaustionReturnsFalse)
{
    int calls = 0;
    EXPECT_FALSE(retryWithBackoff("test-exhaust", fastPolicy(4), [&] {
        ++calls;
        return false;
    }));
    EXPECT_EQ(calls, 4);
}

TEST(Retry, ExceptionsAreNotRetried)
{
    // Exceptions mean non-transient trouble; they propagate on the
    // first attempt instead of burning the retry budget.
    int calls = 0;
    EXPECT_THROW(retryWithBackoff("test-throw", fastPolicy(5),
                                  [&]() -> bool {
                                      ++calls;
                                      throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(calls, 1);
}

TEST(Retry, BackoffHonorsCancellation)
{
    // A deadlined thread must not wait out long backoffs: the sleep
    // polls the bound cancel token and unwinds as TimedOutError.
    RetryPolicy slow;
    slow.attempts = 10;
    slow.baseDelayMs = 60000.0;
    slow.maxDelayMs = 60000.0;
    CancelToken token;
    token.setDeadlineIn(0.05);
    CancelScope scope(&token);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(
        retryWithBackoff("test-cancel", slow, [] { return false; }),
        TimedOutError);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 5.0) << "backoff outlived the deadline";
}

TEST(Cancel, NoTokenMeansNoCancellation)
{
    EXPECT_FALSE(rfl::cancelPending());
    EXPECT_NO_THROW(rfl::checkCancelled("idle"));
}

TEST(Cancel, DeadlineExpiryThrowsWithContext)
{
    CancelToken token;
    token.setDeadlineIn(0.0); // already expired
    CancelScope scope(&token);
    try {
        rfl::checkCancelled("simulate");
        FAIL() << "expired deadline not noticed";
    } catch (const TimedOutError &e) {
        EXPECT_STREQ(e.what(), "deadline exceeded during simulate");
    }
}

TEST(Cancel, FutureDeadlineDoesNotFireEarly)
{
    CancelToken token;
    token.setDeadlineIn(3600.0);
    CancelScope scope(&token);
    EXPECT_NO_THROW(rfl::checkCancelled());
}

TEST(Cancel, LinkedAbortFlagCancelsEveryToken)
{
    // The executor's pattern: every job's token shares one per-run
    // abort flag, so the first failure cancels all siblings.
    std::atomic<bool> abortRun{false};
    CancelToken a, b;
    a.linkAbortFlag(&abortRun);
    b.linkAbortFlag(&abortRun);
    EXPECT_FALSE(a.expired());
    EXPECT_FALSE(b.expired());
    abortRun.store(true);
    EXPECT_TRUE(a.expired());
    EXPECT_TRUE(b.expired());
}

TEST(Cancel, ExplicitCancelAndScopeNesting)
{
    CancelToken outer;
    outer.cancel();
    CancelScope outerScope(&outer);
    EXPECT_TRUE(rfl::cancelPending());
    {
        CancelToken inner; // fresh token shadows the cancelled outer
        CancelScope innerScope(&inner);
        EXPECT_FALSE(rfl::cancelPending());
    }
    EXPECT_TRUE(rfl::cancelPending()) << "outer token not restored";
}

} // namespace
