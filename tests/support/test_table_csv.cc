/** @file Unit tests for the Table and CsvWriter output helpers. */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "support/csv.hh"
#include "support/table.hh"

namespace
{

using rfl::CsvWriter;
using rfl::Table;

TEST(Table, HeaderOnly)
{
    Table t({"a", "bb"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "12345"});
    std::istringstream in(t.toString());
    std::string line;
    std::vector<size_t> lens;
    while (std::getline(in, line))
        lens.push_back(line.size());
    ASSERT_GE(lens.size(), 4u);
    // All rendered rows have identical width.
    for (size_t i = 1; i < lens.size(); ++i)
        EXPECT_EQ(lens[i], lens[0]);
}

TEST(Table, RowCountAndClear)
{
    Table t({"c"});
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
    t.clearRows();
    EXPECT_EQ(t.rowCount(), 0u);
}

TEST(TableDeath, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "panic");
}

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = "/tmp/rfl_test_csv_dir/t.csv";
    std::filesystem::remove_all("/tmp/rfl_test_csv_dir");
    {
        CsvWriter csv(path, {"k", "v"});
        csv.addRow(std::vector<std::string>{"x", "1"});
        csv.addRow(std::vector<double>{2.5, 3.5});
        EXPECT_EQ(csv.rowCount(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string l1, l2, l3;
    std::getline(in, l1);
    std::getline(in, l2);
    std::getline(in, l3);
    EXPECT_EQ(l1, "k,v");
    EXPECT_EQ(l2, "x,1");
    EXPECT_EQ(l3, "2.5,3.5");
    std::filesystem::remove_all("/tmp/rfl_test_csv_dir");
}

TEST(Csv, QuotingRfc4180)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, CreatesParentDirectories)
{
    const std::string path = "/tmp/rfl_test_csv_dir/a/b/c.csv";
    std::filesystem::remove_all("/tmp/rfl_test_csv_dir");
    {
        CsvWriter csv(path, {"x"});
        csv.addRow(std::vector<std::string>{"1"});
    }
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove_all("/tmp/rfl_test_csv_dir");
}

} // namespace
