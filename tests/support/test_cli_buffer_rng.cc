/** @file Unit tests for Cli, AlignedBuffer and Rng. */

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "support/aligned_buffer.hh"
#include "support/cli.hh"
#include "support/rng.hh"

namespace
{

using rfl::AlignedBuffer;
using rfl::Cli;
using rfl::Rng;

TEST(Cli, ParsesFlagsAndValues)
{
    Cli cli;
    cli.addOption("size", "problem size", "64");
    cli.addOption("fast", "reduced sweep");
    const char *argv[] = {"prog", "--size=128", "--fast", nullptr};
    cli.parse(3, argv);
    EXPECT_TRUE(cli.has("size"));
    EXPECT_TRUE(cli.has("fast"));
    EXPECT_EQ(cli.getInt("size", 0), 128);
}

TEST(Cli, SpaceSeparatedValue)
{
    Cli cli;
    cli.addOption("n", "count");
    const char *argv[] = {"prog", "--n", "42", nullptr};
    cli.parse(3, argv);
    EXPECT_EQ(cli.getInt("n", 0), 42);
}

TEST(Cli, DefaultsWhenAbsent)
{
    Cli cli;
    cli.addOption("x", "value");
    const char *argv[] = {"prog", nullptr};
    cli.parse(1, argv);
    EXPECT_FALSE(cli.has("x"));
    EXPECT_EQ(cli.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(cli.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(cli.get("x", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments)
{
    Cli cli;
    cli.addOption("k", "opt");
    const char *argv[] = {"prog", "pos1", "--k=v", "pos2", nullptr};
    cli.parse(4, argv);
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "pos1");
    EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(CliDeath, UnknownOptionIsFatal)
{
    Cli cli;
    const char *argv[] = {"prog", "--nope", nullptr};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(AlignedBuffer, AlignmentAndZeroInit)
{
    AlignedBuffer<double> buf(1000);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), 1000u);
    for (size_t i = 0; i < buf.size(); ++i)
        EXPECT_DOUBLE_EQ(buf[i], 0.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    AlignedBuffer<int> a(16);
    a[3] = 42;
    int *p = a.data();
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b[3], 42);
    EXPECT_EQ(a.data(), nullptr); // NOLINT: testing moved-from state
    EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, ResetReallocates)
{
    AlignedBuffer<double> buf(8);
    buf[0] = 5.0;
    buf.reset(32);
    EXPECT_EQ(buf.size(), 32u);
    EXPECT_DOUBLE_EQ(buf[0], 0.0);
}

TEST(AlignedBuffer, EmptyBuffer)
{
    AlignedBuffer<double> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.data(), nullptr);
    buf.reset(0);
    EXPECT_TRUE(buf.empty());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, DoubleRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
    for (uint64_t v : seen)
        EXPECT_LT(v, 8u);
}

} // namespace
