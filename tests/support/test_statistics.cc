/** @file Unit tests for rfl::Sample and helpers. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.hh"
#include "support/statistics.hh"

namespace
{

using rfl::Sample;

TEST(Sample, EmptyIsZero)
{
    Sample s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Sample, SingleValue)
{
    Sample s;
    s.add(7.5);
    EXPECT_DOUBLE_EQ(s.mean(), 7.5);
    EXPECT_DOUBLE_EQ(s.median(), 7.5);
    EXPECT_DOUBLE_EQ(s.min(), 7.5);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
    EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Sample, MeanAndStdev)
{
    Sample s;
    s.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample stdev with n-1 denominator: sqrt(32/7).
    EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Sample, MedianOddEven)
{
    Sample odd;
    odd.addAll({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(odd.median(), 2.0);

    Sample even;
    even.addAll({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Sample, MedianRobustToOutlier)
{
    Sample s;
    s.addAll({1.0, 1.0, 1.0, 1.0, 1000.0});
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    EXPECT_GT(s.mean(), 100.0);
}

TEST(Sample, Quantiles)
{
    Sample s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.quantile(0.25), 25.0, 1e-9);
    EXPECT_NEAR(s.quantile(0.9), 90.0, 1e-9);
}

TEST(Sample, MinMaxAndClear)
{
    Sample s;
    s.addAll({-3.0, 8.0, 0.5});
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(Sample, CoefficientOfVariation)
{
    Sample s;
    s.addAll({10.0, 10.0, 10.0});
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);

    Sample zero_mean;
    zero_mean.addAll({-1.0, 1.0});
    EXPECT_DOUBLE_EQ(zero_mean.mean(), 0.0);
    EXPECT_DOUBLE_EQ(zero_mean.cv(), 0.0); // guarded division
}

TEST(Sample, Ci95ShrinksWithSampleSize)
{
    Sample small, large;
    for (int i = 0; i < 4; ++i)
        small.add(i % 2 ? 1.0 : 2.0);
    for (int i = 0; i < 64; ++i)
        large.add(i % 2 ? 1.0 : 2.0);
    EXPECT_GT(small.ci95(), large.ci95());
}

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(rfl::relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(rfl::relativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(rfl::relativeError(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(rfl::relativeError(5.0, 0.0), 1.0);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(rfl::geomean({}), 0.0);
    EXPECT_NEAR(rfl::geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(rfl::geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileMonotoneTest, QuantileIsMonotone)
{
    Sample s;
    rfl::Rng rng(99);
    for (int i = 0; i < 257; ++i)
        s.add(rng.nextDouble(-50.0, 50.0));
    const double q = GetParam();
    EXPECT_LE(s.quantile(q * 0.5), s.quantile(q));
    EXPECT_LE(s.quantile(q), s.quantile(std::min(1.0, q * 1.5)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotoneTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.66, 0.9));

} // namespace
