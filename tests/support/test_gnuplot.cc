/** @file Unit tests for the gnuplot .dat/.gp emitter. */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "support/gnuplot.hh"
#include "support/logging.hh"

namespace
{

using rfl::GnuplotSeries;
using rfl::GnuplotWriter;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

TEST(Gnuplot, WritesDatAndGpPair)
{
    const std::string dir = "/tmp/rfl_gp_test";
    std::filesystem::remove_all(dir);
    GnuplotWriter gp(dir, "fig", "a title");
    gp.addLineSeries("roof", {1.0, 2.0}, {10.0, 20.0});
    gp.addPointSeries("kernel", {1.5}, {12.0});
    EXPECT_EQ(gp.seriesCount(), 2u);
    const std::string gp_path = gp.write();
    EXPECT_EQ(gp_path, dir + "/fig.gp");

    const std::string dat = slurp(dir + "/fig.dat");
    EXPECT_NE(dat.find("# series 0: roof"), std::string::npos);
    EXPECT_NE(dat.find("# series 1: kernel"), std::string::npos);
    // gnuplot index blocks are separated by double blank lines.
    EXPECT_NE(dat.find("\n\n\n"), std::string::npos);

    const std::string script = slurp(gp_path);
    EXPECT_NE(script.find("set logscale xy"), std::string::npos);
    EXPECT_NE(script.find("index 0"), std::string::npos);
    EXPECT_NE(script.find("with lines"), std::string::npos);
    EXPECT_NE(script.find("with points"), std::string::npos);
    EXPECT_NE(script.find("a title"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Gnuplot, LinearAxesWhenRequested)
{
    const std::string dir = "/tmp/rfl_gp_test2";
    std::filesystem::remove_all(dir);
    GnuplotWriter gp(dir, "lin", "linear");
    gp.setAxes("x", "y", /*loglog=*/false);
    gp.addLineSeries("s", {0.0, 1.0}, {0.0, 1.0});
    gp.write();
    const std::string script = slurp(dir + "/lin.gp");
    EXPECT_EQ(script.find("logscale"), std::string::npos);
    EXPECT_NE(script.find("set xlabel \"x\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Gnuplot, PerPointLabelsEmitted)
{
    const std::string dir = "/tmp/rfl_gp_test3";
    std::filesystem::remove_all(dir);
    GnuplotWriter gp(dir, "lbl", "labels");
    gp.addPointSeries("pts", {1.0, 2.0}, {3.0, 4.0}, {"n=1", "n=2"});
    gp.write();
    const std::string dat = slurp(dir + "/lbl.dat");
    EXPECT_NE(dat.find("\"n=1\""), std::string::npos);
    EXPECT_NE(dat.find("\"n=2\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(GnuplotDeath, MismatchedSeriesLengthsPanic)
{
    GnuplotWriter gp("/tmp/rfl_gp_test4", "bad", "bad");
    EXPECT_DEATH(gp.addLineSeries("s", {1.0, 2.0}, {1.0}), "assertion");
    GnuplotSeries s;
    s.xs = {1.0};
    s.ys = {1.0};
    s.labels = {"a", "b"}; // wrong arity
    EXPECT_DEATH(gp.addSeries(std::move(s)), "assertion");
}

TEST(Logging, VerboseToggleSilencesInform)
{
    // inform() goes to stdout and respects setVerbose; warn() always
    // prints. We only check the flag round-trip here (output capture is
    // environment-dependent).
    rfl::setVerbose(false);
    EXPECT_FALSE(rfl::verbose());
    rfl::setVerbose(true);
    EXPECT_TRUE(rfl::verbose());
}

} // namespace
