/** @file Unit tests for the roofline model math. */

#include <gtest/gtest.h>

#include "roofline/model.hh"

namespace
{

using rfl::roofline::RooflineModel;

RooflineModel
sample()
{
    RooflineModel m;
    m.addComputeCeiling("scalar", 5e9);
    m.addComputeCeiling("AVX+FMA", 40e9);
    m.addBandwidthCeiling("read", 12e9);
    m.addBandwidthCeiling("triad", 14e9);
    return m;
}

TEST(Model, PeaksAreMaxima)
{
    const RooflineModel m = sample();
    EXPECT_DOUBLE_EQ(m.peakCompute(), 40e9);
    EXPECT_DOUBLE_EQ(m.peakBandwidth(), 14e9);
}

TEST(Model, NamedCeilingLookup)
{
    const RooflineModel m = sample();
    EXPECT_DOUBLE_EQ(m.computeCeiling("scalar"), 5e9);
    EXPECT_DOUBLE_EQ(m.bandwidthCeiling("read"), 12e9);
}

TEST(ModelDeath, MissingCeilingIsFatal)
{
    const RooflineModel m = sample();
    EXPECT_EXIT(m.computeCeiling("nope"), ::testing::ExitedWithCode(1),
                "no compute ceiling");
    EXPECT_EXIT(m.bandwidthCeiling("nope"), ::testing::ExitedWithCode(1),
                "no bandwidth ceiling");
}

TEST(Model, AttainableIsMinOfRoofs)
{
    const RooflineModel m = sample();
    // Memory-bound side: I = 1 -> 14 Gflop/s.
    EXPECT_DOUBLE_EQ(m.attainable(1.0), 14e9);
    // Compute-bound side: I = 100 -> peak.
    EXPECT_DOUBLE_EQ(m.attainable(100.0), 40e9);
    // Exactly at the ridge both sides agree.
    const double ridge = m.ridgePoint();
    EXPECT_NEAR(m.attainable(ridge), 40e9, 1.0);
}

TEST(Model, RidgePoint)
{
    const RooflineModel m = sample();
    EXPECT_NEAR(m.ridgePoint(), 40.0 / 14.0, 1e-12);
    EXPECT_NEAR(m.ridgePoint("scalar", "read"), 5.0 / 12.0, 1e-12);
}

TEST(Model, NamedPairAttainable)
{
    const RooflineModel m = sample();
    EXPECT_DOUBLE_EQ(m.attainable(0.1, "scalar", "read"), 1.2e9);
    EXPECT_DOUBLE_EQ(m.attainable(1000.0, "scalar", "read"), 5e9);
}

TEST(Model, AttainableIsMonotoneInIntensity)
{
    const RooflineModel m = sample();
    double prev = 0.0;
    for (double oi = 0.01; oi < 100.0; oi *= 1.5) {
        const double att = m.attainable(oi);
        EXPECT_GE(att, prev);
        prev = att;
    }
}

TEST(Model, EmptyModelReportsZeroPeaks)
{
    const RooflineModel m;
    EXPECT_DOUBLE_EQ(m.peakCompute(), 0.0);
    EXPECT_DOUBLE_EQ(m.peakBandwidth(), 0.0);
}

} // namespace
