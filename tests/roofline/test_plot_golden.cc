/**
 * @file
 * Golden tests for RooflinePlot's emitters.
 *
 * The .dat/.gp pair and the point table are consumed downstream (plot
 * regeneration scripts, the analysis HTML report, humans reading the
 * terminal); their exact bytes are contract. The fixture is a small
 * hand-checkable model — peak 40 Gflop/s, 10 GB/s, ridge 4 flops/byte —
 * with one memory-bound and one compute-bound point, so every derived
 * cell (attainable P(I), runtime-compute %, bandwidth %) is verifiable
 * by eye: min(40, 0.5*10) = 5 Gflop/s, 4/5 = 80 %, and so on.
 *
 * Also covers the point-glyph alphabet: 62 distinct glyphs (a-z, A-Z,
 * 0-9) before wrapping, where the old emitter silently aliased at 26.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "roofline/plot.hh"
#include "support/hash.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

std::string
outDir()
{
    const char *dir = std::getenv("RFL_OUT_DIR");
    return dir != nullptr ? dir : "test-out";
}

RooflinePlot
goldenPlot()
{
    RooflineModel model;
    model.addComputeCeiling("scalar", 10e9);
    model.addComputeCeiling("SIMD", 40e9);
    model.addBandwidthCeiling("stream", 10e9);
    RooflinePlot plot("golden", model);
    plot.addPoint("memory-kernel", 0.5, 4.0e9);
    plot.addPoint("compute-kernel", 16.0, 30.0e9);
    return plot;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(PlotGolden, PointTable)
{
    const char *const expected =
        "| point          | I [flop/B] | P [Gflop/s] | "
        "roof(I) [Gflop/s] | RC % | BW % |\n"
        "|----------------|------------|-------------|"
        "-------------------|------|------|\n"
        "| memory-kernel  |        0.5 |           4 |"
        "                 5 |   80 |   80 |\n"
        "| compute-kernel |         16 |          30 |"
        "                40 |   75 | 18.8 |\n";
    EXPECT_EQ(goldenPlot().pointTable().toString(), expected);
}

TEST(PlotGolden, GnuplotScript)
{
    const std::string gp_path =
        goldenPlot().writeGnuplot(outDir(), "golden");
    const char *const expected =
        "# Auto-generated roofline figure script\n"
        "set terminal pngcairo size 900,650\n"
        "set output 'golden.png'\n"
        "set title \"golden\"\n"
        "set xlabel \"Operational intensity [flops/byte]\"\n"
        "set ylabel \"Performance [flops/s]\"\n"
        "set logscale xy\n"
        "set key left top\n"
        "set grid\n"
        "plot \\\n"
        "  'golden.dat' index 0 using 1:2 with lines lw 2 "
        "title \"roof\", \\\n"
        "  'golden.dat' index 1 using 1:2 with lines lw 2 "
        "title \"ceiling: scalar\", \\\n"
        "  'golden.dat' index 2 using 1:2 with lines lw 2 "
        "title \"ceiling: SIMD\", \\\n"
        "  'golden.dat' index 3 using 1:2 with lines lw 2 "
        "title \"bandwidth: stream\", \\\n"
        "  'golden.dat' index 4 using 1:2 with points pt 7 ps 1.2 "
        "title \"memory-kernel\", \\\n"
        "  'golden.dat' index 5 using 1:2 with points pt 7 ps 1.2 "
        "title \"compute-kernel\"\n";
    EXPECT_EQ(readFile(gp_path), expected);
}

TEST(PlotGolden, GnuplotData)
{
    goldenPlot().writeGnuplot(outDir(), "golden");
    const std::string dat = readFile(outDir() + "/golden.dat");

    // Any byte change (re-sampling, formatting, series order) moves
    // the content hash; the spot checks below localize a failure.
    EXPECT_EQ(hashToHex(Fnv1a().mix(dat).value()), "5dede3d869655ac2");

    std::istringstream lines(dat);
    std::string line, first, last;
    size_t count = 0;
    while (std::getline(lines, line)) {
        if (count == 0)
            first = line;
        if (!line.empty())
            last = line;
        ++count;
    }
    EXPECT_EQ(count, 244u);
    EXPECT_EQ(first, "# series 0: roof");
    // Final series: the compute-bound point at (16, 30 Gflop/s).
    EXPECT_EQ(last, "16 30000000000");
}

TEST(PlotGolden, GlyphAlphabetCovers62Points)
{
    RooflineModel model;
    model.addComputeCeiling("peak", 10e9);
    model.addBandwidthCeiling("stream", 10e9);
    RooflinePlot plot("glyphs", model);
    for (int i = 0; i < 63; ++i) {
        plot.addPoint("p" + std::to_string(i), 0.25 * (1.0 + i * 0.1),
                      1e9 * (1.0 + i * 0.1));
    }
    const std::string ascii = plot.renderAscii();
    // The legend assigns one distinct glyph per point up to 62: the
    // 27th point gets 'A' (the old alphabet aliased it to 'a'), the
    // 53rd '0', and only the 63rd wraps back to 'a'.
    EXPECT_NE(ascii.find("point 'a': p0 "), std::string::npos);
    EXPECT_NE(ascii.find("point 'z': p25 "), std::string::npos);
    EXPECT_NE(ascii.find("point 'A': p26 "), std::string::npos);
    EXPECT_NE(ascii.find("point 'Z': p51 "), std::string::npos);
    EXPECT_NE(ascii.find("point '0': p52 "), std::string::npos);
    EXPECT_NE(ascii.find("point '9': p61 "), std::string::npos);
    EXPECT_NE(ascii.find("point 'a': p62 "), std::string::npos);
}

} // namespace
