/** @file Tests for platform probing and roofline plotting. */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "roofline/platform.hh"
#include "roofline/plot.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

class PlatformTest : public ::testing::Test
{
  protected:
    PlatformTest()
        : machine_(sim::MachineConfig::defaultPlatform()),
          probe_(machine_)
    {
    }

    sim::Machine machine_;
    PlatformProbe probe_;
};

TEST_F(PlatformTest, ComputePeakMatchesConfiguredPeak)
{
    const double peak = probe_.computePeak({0}, 4, true);
    EXPECT_NEAR(peak, machine_.config().core.peakFlopsPerSec(4),
                0.02 * peak);
}

TEST_F(PlatformTest, ComputePeakScalesWithWidthAndFma)
{
    const double scalar_nofma = probe_.computePeak({0}, 1, false);
    const double scalar_fma = probe_.computePeak({0}, 1, true);
    const double avx_fma = probe_.computePeak({0}, 4, true);
    EXPECT_NEAR(scalar_fma / scalar_nofma, 2.0, 0.05);
    EXPECT_NEAR(avx_fma / scalar_fma, 4.0, 0.1);
}

TEST_F(PlatformTest, ComputePeakScalesWithCores)
{
    const double one = probe_.computePeak({0}, 4, true);
    const double four = probe_.computePeak({0, 1, 2, 3}, 4, true);
    EXPECT_NEAR(four / one, 4.0, 0.1);
}

TEST_F(PlatformTest, SingleCoreBandwidthBelowPerCoreCap)
{
    const BandwidthResult r = probe_.bandwidthPeak({0}, BwProbe::NtSet);
    EXPECT_LE(r.bytesPerSec,
              machine_.config().perCoreDramGBs * 1e9 * 1.01);
    EXPECT_GT(r.bytesPerSec,
              machine_.config().perCoreDramGBs * 1e9 * 0.5);
}

TEST_F(PlatformTest, SocketBandwidthExceedsSingleCore)
{
    const BandwidthResult one = probe_.bandwidthPeak({0}, BwProbe::Triad);
    const BandwidthResult four =
        probe_.bandwidthPeak({0, 1, 2, 3}, BwProbe::Triad);
    EXPECT_GT(four.bytesPerSec, 1.5 * one.bytesPerSec);
    EXPECT_LE(four.bytesPerSec,
              machine_.config().socketDramGBs * 1e9 * 1.02);
}

TEST_F(PlatformTest, NtSetMovesFewerBytesPerUsefulByte)
{
    // Regular stores triple the traffic of the useful bytes (allocate
    // read + writeback); NT stores are 1:1.
    const BandwidthResult nt = probe_.bandwidthPeak({0}, BwProbe::NtSet);
    EXPECT_NEAR(nt.bytesPerSec, nt.usefulBytesPerSec,
                0.02 * nt.bytesPerSec);
    const BandwidthResult copy = probe_.bandwidthPeak({0}, BwProbe::Copy);
    EXPECT_GT(copy.bytesPerSec, 1.3 * copy.usefulBytesPerSec);
}

TEST_F(PlatformTest, CharacterizeProducesOrderedCeilings)
{
    const RooflineModel model = probe_.characterize({0});
    EXPECT_GE(model.computeCeilings().size(), 3u);
    EXPECT_GE(model.bandwidthCeilings().size(), 1u);
    EXPECT_LT(model.computeCeiling("scalar"),
              model.computeCeiling("AVX+FMA"));
    EXPECT_GT(model.ridgePoint(), 0.5);
    EXPECT_LT(model.ridgePoint(), 20.0);
}

TEST(PlatformScenarios, CoreSetHelpers)
{
    sim::Machine machine(sim::MachineConfig::defaultPlatform());
    EXPECT_EQ(singleThreadCores(machine), std::vector<int>{0});
    EXPECT_EQ(oneSocketCores(machine).size(), 4u);
    EXPECT_EQ(allCores(machine).size(), 8u);
    EXPECT_EQ(scenarioName(machine, {0}), "single core");
    EXPECT_EQ(scenarioName(machine, oneSocketCores(machine)),
              "single socket");
    EXPECT_EQ(scenarioName(machine, allCores(machine)), "2 sockets");
    EXPECT_EQ(scenarioName(machine, {0, 1}), "2 cores");
}

RooflineModel
toyModel()
{
    RooflineModel m;
    m.addComputeCeiling("scalar", 5e9);
    m.addComputeCeiling("AVX+FMA", 40e9);
    m.addBandwidthCeiling("stream", 14e9);
    return m;
}

TEST(Plot, PointsAndTable)
{
    RooflinePlot plot("test", toyModel());
    plot.addPoint("mem-bound", 0.1, 1.2e9);
    plot.addPoint("comp-bound", 10.0, 30e9);
    EXPECT_EQ(plot.points().size(), 2u);

    const rfl::Table table = plot.pointTable();
    const std::string text = table.toString();
    EXPECT_NE(text.find("mem-bound"), std::string::npos);
    EXPECT_NE(text.find("comp-bound"), std::string::npos);
}

TEST(Plot, RejectsDegeneratePoints)
{
    RooflinePlot plot("test", toyModel());
    plot.addPoint("inf", std::numeric_limits<double>::infinity(), 1e9);
    plot.addPoint("zero-oi", 0.0, 1e9);
    plot.addPoint("zero-perf", 1.0, 0.0);
    EXPECT_TRUE(plot.points().empty());
}

TEST(Plot, AsciiRenderContainsRoofAndPoints)
{
    RooflinePlot plot("ascii-test", toyModel());
    plot.addPoint("k1", 0.1, 1.0e9);
    const std::string art = plot.renderAscii();
    EXPECT_NE(art.find('='), std::string::npos);  // roof
    EXPECT_NE(art.find('/'), std::string::npos);  // bandwidth ceiling
    EXPECT_NE(art.find("point 'a'"), std::string::npos);
    EXPECT_NE(art.find("ridge"), std::string::npos);
}

TEST(Plot, GnuplotFilesWritten)
{
    const std::string dir = "/tmp/rfl_plot_test";
    std::filesystem::remove_all(dir);
    RooflinePlot plot("gp-test", toyModel());
    plot.addPoint("k", 1.0, 5e9);
    const std::string gp = plot.writeGnuplot(dir, "fig_test");
    EXPECT_TRUE(std::filesystem::exists(gp));
    EXPECT_TRUE(std::filesystem::exists(dir + "/fig_test.dat"));
    std::ifstream in(dir + "/fig_test.dat");
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("# series"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Plot, MeasurementIntegration)
{
    RooflinePlot plot("m", toyModel());
    Measurement m;
    m.kernel = "daxpy";
    m.sizeLabel = "n=8";
    m.protocol = "cold";
    m.flops = 1000;
    m.trafficBytes = 10000;
    m.seconds = 1e-6;
    plot.addMeasurement(m);
    ASSERT_EQ(plot.points().size(), 1u);
    EXPECT_DOUBLE_EQ(plot.points()[0].oi, 0.1);
    EXPECT_NE(plot.points()[0].label.find("daxpy"), std::string::npos);
}

} // namespace
