/** @file Tests for the measurement methodology (protocols, overhead). */

#include <gtest/gtest.h>

#include "kernels/daxpy.hh"
#include "kernels/registry.hh"
#include "pmu/sim_backend.hh"
#include "roofline/measurement.hh"
#include "sim/machine.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

sim::MachineConfig
quietConfig()
{
    sim::MachineConfig cfg = sim::MachineConfig::defaultPlatform();
    cfg.l1Prefetcher.kind = sim::PrefetcherKind::None;
    cfg.l2Prefetcher.kind = sim::PrefetcherKind::None;
    return cfg;
}

TEST(Measurement, DerivedQuantities)
{
    Measurement m;
    m.flops = 1000.0;
    m.trafficBytes = 4000.0;
    m.seconds = 1e-6;
    m.expectedFlops = 1000.0;
    m.expectedTrafficBytes = 4200.0;
    EXPECT_DOUBLE_EQ(m.oi(), 0.25);
    EXPECT_DOUBLE_EQ(m.perf(), 1e9);
    EXPECT_DOUBLE_EQ(m.workError(), 0.0);
    EXPECT_NEAR(m.trafficError(), 200.0 / 4200.0, 1e-12);
}

/** The Measurer is decoupled from the backend implementation: an
 *  externally supplied pmu::Backend must produce the same measurement
 *  as the internally owned SimBackend. */
TEST(Measurement, ExternalBackendMatchesOwnedBackend)
{
    kernels::Daxpy daxpy(1 << 12);
    MeasureOptions opts;
    opts.repetitions = 2;

    sim::Machine owned_machine(quietConfig());
    Measurer owned(owned_machine);
    const Measurement a = owned.measure(daxpy, opts);

    sim::Machine machine(quietConfig());
    pmu::SimBackend backend(machine);
    Measurer external(machine, backend);
    EXPECT_EQ(external.backend().name(), "sim");
    const Measurement b = external.measure(daxpy, opts);

    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.seconds, b.seconds);
}

TEST(Measurement, ColdDaxpyMatchesAnalyticModelExactly)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 16);

    MeasureOptions opts;
    opts.repetitions = 3;
    const Measurement m = measurer.measure(daxpy, opts);

    EXPECT_DOUBLE_EQ(m.flops, daxpy.expectedFlops());
    EXPECT_NEAR(m.trafficBytes, daxpy.expectedColdTrafficBytes(),
                0.001 * daxpy.expectedColdTrafficBytes());
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_EQ(m.protocol, "cold");
    EXPECT_EQ(m.cores, 1);
}

TEST(Measurement, RepetitionsAreDeterministicOnSim)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 14);
    MeasureOptions opts;
    opts.repetitions = 4;
    const Measurement m = measurer.measure(daxpy, opts);
    EXPECT_EQ(m.secondsSample.count(), 4u);
    // The cold protocol flushes caches but (like real hardware) not the
    // TLB, so the first repetition pays page walks the rest do not:
    // runtime varies below 0.5%, traffic is exact.
    EXPECT_LT(m.secondsSample.cv(), 0.005);
    EXPECT_NEAR(m.trafficSample.cv(), 0.0, 1e-9);
}

TEST(Measurement, WarmProtocolShrinksTrafficForResidentSets)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 14); // 256 KiB, LLC resident

    MeasureOptions cold;
    const Measurement mc = measurer.measure(daxpy, cold);

    MeasureOptions warm;
    warm.protocol = CacheProtocol::Warm;
    const Measurement mw = measurer.measure(daxpy, warm);

    EXPECT_LT(mw.trafficBytes, 0.05 * mc.trafficBytes);
    // Same code, same work:
    EXPECT_DOUBLE_EQ(mw.flops, mc.flops);
    // Hence much higher operational intensity when warm.
    EXPECT_GT(mw.oi(), 10.0 * mc.oi());
}

TEST(Measurement, WarmEqualsColdForStreamingSets)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 21); // 32 MiB, far beyond the 10 MiB L3

    MeasureOptions cold;
    cold.repetitions = 1;
    const Measurement mc = measurer.measure(daxpy, cold);
    MeasureOptions warm;
    warm.protocol = CacheProtocol::Warm;
    warm.repetitions = 1;
    const Measurement mw = measurer.measure(daxpy, warm);

    EXPECT_NEAR(mw.trafficBytes, mc.trafficBytes,
                0.15 * mc.trafficBytes);
}

TEST(Measurement, FlushAfterCapturesTrailingWritebacks)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    // LLC-resident working set: without the closing flush, the dirty
    // output stays cached and the write traffic leaks out of the region.
    kernels::Daxpy daxpy(1 << 14);

    MeasureOptions with_flush;
    const Measurement m1 = measurer.measure(daxpy, with_flush);

    MeasureOptions no_flush;
    no_flush.flushAfter = false;
    const Measurement m2 = measurer.measure(daxpy, no_flush);

    EXPECT_GT(m1.trafficBytes, m2.trafficBytes);
    // The gap is exactly the output array's writeback (8n of 24n).
    EXPECT_NEAR(m1.trafficBytes - m2.trafficBytes,
                8.0 * (1 << 14), 0.02 * m1.trafficBytes);
}

TEST(Measurement, MultiCoreRunsPartitionAcrossCores)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 18);

    MeasureOptions one;
    one.cores = {0};
    const Measurement m1 = measurer.measure(daxpy, one);

    MeasureOptions four;
    four.cores = {0, 1, 2, 3};
    const Measurement m4 = measurer.measure(daxpy, four);

    EXPECT_EQ(m4.cores, 4);
    EXPECT_DOUBLE_EQ(m4.flops, m1.flops); // same total work
    EXPECT_LT(m4.seconds, m1.seconds);    // but faster
}

TEST(MeasurementDeath, NonParallelizableKernelRejectsMultiCore)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    const auto fft = kernels::createKernel("fft:n=1024");
    MeasureOptions opts;
    opts.cores = {0, 1};
    EXPECT_EXIT(measurer.measure(*fft, opts),
                ::testing::ExitedWithCode(1), "multi-core");
}

TEST(MeasurementDeath, OutOfRangeCoreIsFatal)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1024);
    MeasureOptions opts;
    opts.cores = {99};
    EXPECT_EXIT(measurer.measure(daxpy, opts),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Measurement, LanesOptionControlsWidthClass)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 12);

    MeasureOptions scalar;
    scalar.lanes = 1;
    const Measurement ms = measurer.measure(daxpy, scalar);
    EXPECT_EQ(ms.lanes, 1);

    MeasureOptions avx;
    avx.lanes = 4;
    const Measurement mv = measurer.measure(daxpy, avx);
    EXPECT_EQ(mv.lanes, 4);

    // Same work, both measured identically through the width weighting.
    EXPECT_NEAR(ms.flops, mv.flops, 1e-9);
    // daxpy is DRAM-bound, so scalar execution is at best equal, never
    // faster (a compute-bound kernel would show a strict gap; that is
    // covered by Invariants.VectorWidthCeilingsRespected).
    EXPECT_GE(ms.seconds, mv.seconds * 0.999);
}

TEST(Measurement, DependentKernelGetsMlpOne)
{
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    const auto chase = kernels::createKernel("pointer-chase:nodes=16384");
    MeasureOptions opts;
    opts.repetitions = 1;
    const Measurement m = measurer.measure(*chase, opts);
    // 16384 hops, each a full DRAM latency (80 ns at MLP 1): runtime
    // must be at least hops * latency.
    EXPECT_GT(m.seconds, 16384 * 80e-9 * 0.9);
    // And the flag must be restored afterwards.
    EXPECT_FALSE(machine.dependentAccesses());
}

TEST(Measurement, OverheadSubtractionChangesNothingWhenFrameworkIsQuiet)
{
    // On the simulator the empty framework generates no counts, so the
    // subtraction is a no-op; this pins the plumbing.
    sim::Machine machine(quietConfig());
    Measurer measurer(machine);
    kernels::Daxpy daxpy(1 << 12);

    MeasureOptions with_sub;
    const Measurement m1 = measurer.measure(daxpy, with_sub);
    MeasureOptions without_sub;
    without_sub.subtractOverhead = false;
    const Measurement m2 = measurer.measure(daxpy, without_sub);
    EXPECT_DOUBLE_EQ(m1.flops, m2.flops);
    EXPECT_NEAR(m1.trafficBytes, m2.trafficBytes, 1.0);
}

} // namespace
