/** @file Tests for the Experiment driver and output helpers. */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "kernels/daxpy.hh"
#include "roofline/experiment.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

TEST(Experiment, ModelCacheReturnsSameObject)
{
    Experiment exp;
    const RooflineModel &a = exp.modelFor({0});
    const RooflineModel &b = exp.modelFor({0});
    EXPECT_EQ(&a, &b); // characterized once, cached
    const RooflineModel &c = exp.modelFor({0, 1});
    EXPECT_NE(&a, &c);
    EXPECT_GT(c.peakCompute(), a.peakCompute());
}

TEST(Experiment, MeasureSpecParsesAndMeasures)
{
    Experiment exp;
    MeasureOptions opts;
    opts.repetitions = 1;
    const Measurement m = exp.measureSpec("daxpy:n=8192", opts);
    EXPECT_EQ(m.kernel, "daxpy");
    EXPECT_DOUBLE_EQ(m.flops, 2.0 * 8192);
}

TEST(Experiment, SweepProducesOneMeasurementPerSize)
{
    Experiment exp;
    MeasureOptions opts;
    opts.repetitions = 1;
    const std::vector<size_t> sizes = {1024, 2048, 4096};
    const std::vector<Measurement> ms = exp.sweep(
        sizes,
        [](size_t n) -> std::unique_ptr<kernels::Kernel> {
            return std::make_unique<kernels::Daxpy>(n);
        },
        opts);
    ASSERT_EQ(ms.size(), 3u);
    for (size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_DOUBLE_EQ(ms[i].flops,
                         2.0 * static_cast<double>(sizes[i]));
    }
}

TEST(Experiment, CustomMachineConfigHonored)
{
    Experiment exp(sim::MachineConfig::scalarMachine());
    EXPECT_EQ(exp.machine().numCores(), 1);
    const RooflineModel &model = exp.modelFor({0});
    // No SIMD, no FMA: peak is fpUnits * freq = 5 Gflop/s.
    EXPECT_NEAR(model.peakCompute(), 5e9, 0.1e9);
}

TEST(Experiment, MeasurementCsvRoundTrip)
{
    const std::string dir = "/tmp/rfl_exp_test";
    std::filesystem::remove_all(dir);
    Measurement m;
    m.kernel = "k";
    m.sizeLabel = "n=1";
    m.protocol = "cold";
    m.flops = 100;
    m.trafficBytes = 800;
    m.seconds = 1e-6;
    writeMeasurementsCsv({m}, dir, "t");
    std::ifstream in(dir + "/t.csv");
    ASSERT_TRUE(in.good());
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_NE(header.find("traffic_bytes"), std::string::npos);
    EXPECT_NE(row.find("k,"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Experiment, Pow2Sizes)
{
    const std::vector<size_t> s = pow2Sizes(8, 64);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s.front(), 8u);
    EXPECT_EQ(s.back(), 64u);
}

TEST(ExperimentDeath, BadSpecIsFatal)
{
    Experiment exp;
    EXPECT_EXIT(exp.measureSpec("nonsense"),
                ::testing::ExitedWithCode(1), "unknown kernel");
}

} // namespace
