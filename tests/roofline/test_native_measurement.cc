/** @file Tests for the native (host CPU) measurement path. */

#include <gtest/gtest.h>

#include "kernels/daxpy.hh"
#include "kernels/registry.hh"
#include "roofline/native_measurement.hh"

namespace
{

using namespace rfl;
using namespace rfl::roofline;

TEST(NativeMeasurer, WorkIsCounterExact)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 16);
    NativeMeasureOptions opts;
    opts.repetitions = 2;
    opts.flushBufferBytes = 1 << 20; // keep the test fast
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_DOUBLE_EQ(r.base.flops, 2.0 * (1 << 16));
    EXPECT_DOUBLE_EQ(r.base.workError(), 0.0);
    EXPECT_GT(r.base.seconds, 0.0);
}

TEST(NativeMeasurer, TrafficIsAnalyticModel)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 14);
    NativeMeasureOptions opts;
    opts.repetitions = 1;
    opts.flushBufferBytes = 1 << 20;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_EQ(r.trafficSource, "analytic");
    EXPECT_DOUBLE_EQ(r.base.trafficBytes,
                     daxpy.expectedColdTrafficBytes());
    EXPECT_GT(r.base.oi(), 0.0);
}

TEST(NativeMeasurer, WarmProtocolUsesWarmModel)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 12); // 64 KiB: resident in any LLC
    NativeMeasureOptions opts;
    opts.protocol = CacheProtocol::Warm;
    opts.repetitions = 1;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_DOUBLE_EQ(r.base.trafficBytes, 0.0);
    EXPECT_EQ(r.base.protocol, "warm");
}

TEST(NativeMeasurer, MultiThreadedRunComputesSameWork)
{
    NativeMeasurer nm;
    NativeMeasureOptions one;
    one.repetitions = 1;
    one.flushBufferBytes = 1 << 20;
    NativeMeasureOptions four = one;
    four.threads = 4;

    kernels::Daxpy k1(1 << 16);
    const NativeMeasurement r1 = nm.measure(k1, one);
    kernels::Daxpy k4(1 << 16);
    const NativeMeasurement r4 = nm.measure(k4, four);

    EXPECT_DOUBLE_EQ(r1.base.flops, r4.base.flops);
    EXPECT_EQ(r4.base.cores, 4);
    // Same deterministic init, same result.
    EXPECT_DOUBLE_EQ(k1.checksum(), k4.checksum());
}

TEST(NativeMeasurer, RepetitionStatisticsPopulated)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 12);
    NativeMeasureOptions opts;
    opts.repetitions = 5;
    opts.flushBufferBytes = 1 << 20;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_EQ(r.base.secondsSample.count(), 5u);
    EXPECT_EQ(r.base.flopsSample.count(), 5u);
    // Work is deterministic even though time is not.
    EXPECT_DOUBLE_EQ(r.base.flopsSample.cv(), 0.0);
}

TEST(NativeMeasurerDeath, NonParallelizableKernelRejectsThreads)
{
    NativeMeasurer nm;
    const auto fft = kernels::createKernel("fft:n=256");
    NativeMeasureOptions opts;
    opts.threads = 2;
    EXPECT_EXIT(nm.measure(*fft, opts), ::testing::ExitedWithCode(1),
                "multi-threaded");
}

TEST(NativeMeasurer, ScalarLanesWork)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 12);
    NativeMeasureOptions opts;
    opts.lanes = 1;
    opts.repetitions = 1;
    opts.flushBufferBytes = 1 << 20;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_EQ(r.base.lanes, 1);
    EXPECT_DOUBLE_EQ(r.base.flops, 2.0 * (1 << 12));
}

TEST(NativeMeasurer, NoPerfFallbackIsDeterministic)
{
    // The degraded path CI always takes: perf disabled outright. The
    // measurement must still be complete — W from the software
    // retirement counters, Q from the analytic model — and labeled as
    // such, so consumers never mistake a fallback row for silicon
    // counter data.
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 14);
    NativeMeasureOptions opts;
    opts.usePerf = false;
    opts.repetitions = 2;
    opts.flushBufferBytes = 1 << 20;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    EXPECT_EQ(r.trafficSource, "analytic");
    EXPECT_FALSE(r.perfLive);
    EXPECT_EQ(r.perfCycles, 0u);
    // W comes from the engine's software flop counters: exact.
    EXPECT_DOUBLE_EQ(r.base.flops, 2.0 * (1 << 14));
    EXPECT_DOUBLE_EQ(r.base.workError(), 0.0);
    EXPECT_DOUBLE_EQ(r.base.trafficBytes,
                     daxpy.expectedColdTrafficBytes());
    // Provenance: a hardware-path row, full quality (no multiplexing
    // can degrade counters that were never opened), available.
    EXPECT_EQ(r.base.backend, "perf");
    EXPECT_DOUBLE_EQ(r.base.quality, 1.0);
    EXPECT_TRUE(r.base.available);
}

TEST(NativeMeasurer, PerfFlagIsConsistent)
{
    NativeMeasurer nm;
    kernels::Daxpy daxpy(1 << 12);
    NativeMeasureOptions opts;
    opts.repetitions = 1;
    opts.flushBufferBytes = 1 << 20;
    const NativeMeasurement r = nm.measure(daxpy, opts);
    if (!nm.perfAvailable()) {
        EXPECT_FALSE(r.perfLive);
        EXPECT_EQ(r.perfCycles, 0u);
    } else {
        EXPECT_TRUE(r.perfLive);
        EXPECT_GT(r.perfCycles, 0u);
    }
}

} // namespace
