#!/usr/bin/env python3
"""Validate the schema of a BENCH_*.json perf-trajectory file.

CI runs this after bench/sim_throughput so schema regressions (renamed
keys, missing workloads, non-numeric rates) fail the build. Absolute
speeds are deliberately NOT checked: CI runners vary too much for a
stable threshold, and the trajectory is judged offline.

Usage: check_bench_schema.py BENCH_sim_throughput.json
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj: dict, key: str, types) -> object:
    if key not in obj:
        fail(f"missing key '{key}'")
    if not isinstance(obj[key], types):
        fail(f"key '{key}' has type {type(obj[key]).__name__}, "
             f"expected {types}")
    return obj[key]


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py <bench.json>")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if require(doc, "bench", str) != "sim_throughput":
        fail("bench name is not 'sim_throughput'")
    if require(doc, "schema_version", int) != 2:
        fail("unknown schema_version (expected 2: batched-mode entries)")
    require(doc, "unit", str)
    require(doc, "rfl_fast", bool)
    for key in ("geomean_speedup", "streaming_speedup",
                "hot_loop_speedup", "batched_geomean_speedup",
                "batched_streaming_speedup", "batched_hot_loop_speedup"):
        require(doc, key, (int, float))

    workloads = require(doc, "workloads", list)
    if not workloads:
        fail("workloads list is empty")
    names = set()
    for w in workloads:
        if not isinstance(w, dict):
            fail("workload entry is not an object")
        name = require(w, "name", str)
        if name in names:
            fail(f"duplicate workload '{name}'")
        names.add(name)
        require(w, "spec", str)
        require(w, "lanes", int)
        require(w, "streaming", bool)
        require(w, "hot_loop", bool)
        for key in ("reference_accesses_per_sec", "fast_accesses_per_sec",
                    "batched_accesses_per_sec", "speedup",
                    "batched_speedup"):
            value = require(w, key, (int, float))
            if value <= 0:
                fail(f"workload '{name}': {key} must be positive")

    # The trajectory tooling keys on these two workloads existing.
    for required in ("raw-l1-streak", "daxpy-scalar"):
        if required not in names:
            fail(f"required workload '{required}' missing")

    print(f"{sys.argv[1]}: schema OK "
          f"({len(workloads)} workloads, "
          f"hot-loop speedup {doc['hot_loop_speedup']:.2f}x, "
          f"batched {doc['batched_hot_loop_speedup']:.2f}x)")


if __name__ == "__main__":
    main()
