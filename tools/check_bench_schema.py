#!/usr/bin/env python3
"""Validate the schema of rfl's machine-readable JSON artifacts.

Four document kinds are recognized by content:
  - BENCH_sim_throughput.json perf-trajectory files (schema v3,
    bench == "sim_throughput": batched-mode entries, the parallel-drain
    scaling sweep, and the non-streaming batched-parity gate),
  - BENCH_service_throughput.json service-load files (schema v1,
    bench == "service_throughput") produced by bench/service_throughput
    against the roofline-as-a-service daemon (src/service/),
  - analysis.json roofline-analysis documents (schema v3 or v4,
    kind == "rfl-analysis") produced by the analysis subsystem
    (src/analysis/analysis.hh) via roofline_report — v4 adds per-row
    measurement provenance (backend sim|perf, multiplex quality in
    [0, 1], available flag) and admits the same cell twice, once per
    backend — and
  - metrics.json telemetry snapshots (schema v1, kind == "rfl-metrics")
    written by roofline_campaign --telemetry-dir from the metrics
    registry (src/telemetry/metrics.hh),
  - series exports (schema v1, kind == "rfl-series") served by the
    daemon's GET /seriesz from the time-series sampler
    (src/telemetry/timeseries.hh), and
  - profile.json captures (schema v1, kind == "rfl-profile") written
    by roofline_campaign --profile-out / served by GET /profilez from
    the sampling profiler (src/telemetry/profiler.hh).

CI runs this after bench/sim_throughput and after roofline_report, so
schema regressions (renamed keys, missing workloads, non-numeric rates,
non-strict JSON) fail the build. Absolute speeds are deliberately NOT
checked: CI runners vary too much for a stable threshold. Regression
gating on the *analysis* numbers is a separate, threshold-based step
(roofline_report --diff) because the simulator is deterministic.

Usage: check_bench_schema.py <bench.json | analysis.json>
"""

import json
import math
import sys


def fail(msg: str) -> None:
    print(f"schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj: dict, key: str, types) -> object:
    if key not in obj:
        fail(f"missing key '{key}'")
    if not isinstance(obj[key], types):
        fail(f"key '{key}' has type {type(obj[key]).__name__}, "
             f"expected {types}")
    return obj[key]


def finite_number(obj: dict, key: str, ctx: str) -> float:
    value = require(obj, key, (int, float))
    if isinstance(value, float) and not math.isfinite(value):
        fail(f"{ctx}: key '{key}' is not finite "
             f"(analysis.json must be strict JSON; inf encodes as null)")
    return value


def check_bench(doc: dict) -> None:
    if require(doc, "bench", str) != "sim_throughput":
        fail("bench name is not 'sim_throughput'")
    if require(doc, "schema_version", int) != 3:
        fail("unknown schema_version (expected 3: batched-mode entries "
             "+ drain_scaling section)")
    require(doc, "unit", str)
    rfl_fast = require(doc, "rfl_fast", bool)
    # Non-streaming workloads must not regress under batching: the
    # latency fast path exists precisely so dependent-chain streams
    # stop paying batching overhead. The committed (full-length,
    # best-of-N) artifact is gated at parity; CI's RFL_FAST runs use
    # 0.05 s windows where a few percent of scheduling noise on shared
    # runners is routine, so they get a documented tolerance instead of
    # a flaky gate.
    batched_floor = 0.90 if rfl_fast else 1.0
    for key in ("geomean_speedup", "streaming_speedup",
                "hot_loop_speedup", "batched_geomean_speedup",
                "batched_streaming_speedup", "batched_hot_loop_speedup"):
        require(doc, key, (int, float))

    workloads = require(doc, "workloads", list)
    if not workloads:
        fail("workloads list is empty")
    names = set()
    for w in workloads:
        if not isinstance(w, dict):
            fail("workload entry is not an object")
        name = require(w, "name", str)
        if name in names:
            fail(f"duplicate workload '{name}'")
        names.add(name)
        require(w, "spec", str)
        require(w, "lanes", int)
        require(w, "streaming", bool)
        require(w, "hot_loop", bool)
        for key in ("reference_accesses_per_sec", "fast_accesses_per_sec",
                    "batched_accesses_per_sec", "speedup",
                    "batched_speedup"):
            value = require(w, key, (int, float))
            if value <= 0:
                fail(f"workload '{name}': {key} must be positive")
        if not w["streaming"] and w["batched_speedup"] < batched_floor:
            fail(f"workload '{name}': non-streaming batched_speedup "
                 f"{w['batched_speedup']:.3f} below {batched_floor:.2f} "
                 f"(latency fast path regressed)")

    # The trajectory tooling keys on these two workloads existing.
    for required in ("raw-l1-streak", "daxpy-scalar"):
        if required not in names:
            fail(f"required workload '{required}' missing")

    # v3: parallel-drain scaling sweep (wall-clock only; the counters
    # are bit-identical across thread counts by construction).
    drain = require(doc, "drain_scaling", dict)
    require(drain, "workload", str)
    cores = require(drain, "cores", list)
    if len(cores) < 2:
        fail("drain_scaling.cores must list >= 2 simulated cores")
    rows = require(drain, "rows", list)
    threads_seen = set()
    for r in rows:
        if not isinstance(r, dict):
            fail("drain_scaling row is not an object")
        threads = require(r, "threads", int)
        if threads in threads_seen:
            fail(f"duplicate drain_scaling row for {threads} threads")
        threads_seen.add(threads)
        if finite_number(r, "accesses_per_sec", "drain_scaling") <= 0:
            fail("drain_scaling: accesses_per_sec must be positive")
        if finite_number(r, "speedup_vs_one_thread",
                         "drain_scaling") <= 0:
            fail("drain_scaling: speedup_vs_one_thread must be positive")
    for required_threads in (1, 2, 4, 8):
        if required_threads not in threads_seen:
            fail(f"drain_scaling row for {required_threads} threads "
                 f"missing")

    print(f"{sys.argv[1]}: schema OK "
          f"({len(workloads)} workloads, "
          f"{len(rows)} drain-scaling rows, "
          f"hot-loop speedup {doc['hot_loop_speedup']:.2f}x, "
          f"batched {doc['batched_hot_loop_speedup']:.2f}x)")


def check_service(doc: dict) -> None:
    if require(doc, "schema_version", int) != 1:
        fail("unknown schema_version (expected 1)")
    require(doc, "unit", str)
    require(doc, "rfl_fast", bool)

    clients = require(doc, "clients", int)
    if clients < 64:
        fail(f"clients is {clients}; the load bench must drive >= 64 "
             f"concurrent clients")
    require(doc, "requests_per_client", int)
    if require(doc, "total_requests", int) <= 0:
        fail("total_requests must be positive")
    if require(doc, "dropped_connections", int) != 0:
        fail("dropped_connections must be 0 (acceptance: no client "
             "is ever dropped under load)")
    if finite_number(doc, "rps", "service") <= 0:
        fail("rps must be positive")
    for key in ("cold_submit_seconds", "cached_submit_seconds"):
        if finite_number(doc, key, "service") <= 0:
            fail(f"{key} must be positive")
    hit_rate = finite_number(doc, "cache_hit_rate", "service")
    if not 0.0 <= hit_rate <= 1.0:
        fail("cache_hit_rate must be within [0, 1]")
    if require(doc, "dedup_hits", int) <= 0:
        fail("dedup_hits must be positive (the bench resubmits an "
             "identical campaign)")

    latency = require(doc, "latency_us", dict)
    for key in ("p50", "p90", "p99", "max"):
        if finite_number(latency, key, "latency_us") <= 0:
            fail(f"latency_us.{key} must be positive")
    if not (latency["p50"] <= latency["p90"] <= latency["p99"]
            <= latency["max"]):
        fail("latency percentiles must be monotonic")

    endpoints = require(doc, "endpoints", list)
    names = set()
    for e in endpoints:
        if not isinstance(e, dict):
            fail("endpoint entry is not an object")
        name = require(e, "name", str)
        if name in names:
            fail(f"duplicate endpoint '{name}'")
        names.add(name)
        if require(e, "requests", int) <= 0:
            fail(f"endpoint '{name}': requests must be positive")
        for key in ("p50_us", "p90_us", "p99_us"):
            if finite_number(e, key, f"endpoint {name}") <= 0:
                fail(f"endpoint '{name}': {key} must be positive")
    for required in ("status", "analysis", "submit-dedup"):
        if required not in names:
            fail(f"required endpoint '{required}' missing")

    print(f"{sys.argv[1]}: schema OK "
          f"(service v1: {clients} clients, {doc['rps']:.0f} req/s, "
          f"p99 {latency['p99']:.0f} us, "
          f"hit-rate {hit_rate:.2f})")


def check_ceilings(obj: dict, key: str, ctx: str) -> None:
    ceilings = require(obj, key, list)
    if not ceilings:
        fail(f"{ctx}: {key} is empty")
    for c in ceilings:
        if not isinstance(c, dict):
            fail(f"{ctx}: {key} entry is not an object")
        require(c, "name", str)
        if finite_number(c, "value", ctx) <= 0:
            fail(f"{ctx}: {key} value must be positive")


def check_analysis(doc: dict) -> None:
    # v4 adds per-row provenance (backend, quality, available); v3
    # documents predate the fields and remain valid (every committed
    # baseline is v3).
    version = require(doc, "schema_version", (int, float))
    if version not in (3, 4):
        fail("unknown schema_version (expected 3 or 4)")
    require(doc, "campaign", str)

    scenarios = require(doc, "scenarios", list)
    if not scenarios:
        fail("scenarios list is empty")
    scenario_keys = set()
    for s in scenarios:
        if not isinstance(s, dict):
            fail("scenario entry is not an object")
        key = (require(s, "machine", str), require(s, "variant", str))
        if key in scenario_keys:
            fail(f"duplicate scenario {key}")
        scenario_keys.add(key)
        ctx = f"scenario {key}"
        for field in ("peak_flops", "peak_bandwidth", "ridge"):
            if finite_number(s, field, ctx) <= 0:
                fail(f"{ctx}: {field} must be positive")
        check_ceilings(s, "compute_ceilings", ctx)
        check_ceilings(s, "bandwidth_ceilings", ctx)

    kernels = require(doc, "kernels", list)
    kernel_keys = set()
    for k in kernels:
        if not isinstance(k, dict):
            fail("kernel entry is not an object")
        # backend joins the dedup key in v4: the same cell measured by
        # sim AND silicon is two legitimate rows.
        backend = "sim"
        if version >= 4:
            backend = require(k, "backend", str)
            if backend not in ("sim", "perf"):
                fail(f"backend must be sim|perf, got '{backend}'")
            quality = finite_number(k, "quality", "kernel row")
            if not 0.0 <= quality <= 1.0:
                fail(f"quality must be in [0, 1], got {quality}")
            if not isinstance(k.get("available"), bool):
                fail("kernel row: available must be a bool")
        key = tuple(require(k, f, str) for f in
                    ("machine", "variant", "kernel", "size",
                     "protocol")) + (backend,)
        if key in kernel_keys:
            fail(f"duplicate kernel row {key}")
        kernel_keys.add(key)
        ctx = f"kernel row {key}"
        if (key[0], key[1]) not in scenario_keys:
            fail(f"{ctx}: no matching scenario")
        require(k, "cores", (int, float))
        require(k, "lanes", (int, float))
        for field in ("flops", "traffic_bytes", "seconds", "perf",
                      "attainable", "pct_roof", "pct_peak",
                      "achieved_bandwidth", "pct_peak_bw"):
            finite_number(k, field, ctx)
        if "oi" not in k:
            fail(f"{ctx}: missing key 'oi'")
        if k["oi"] is not None:
            finite_number(k, "oi", ctx)
        if require(k, "bound", str) not in ("memory", "compute"):
            fail(f"{ctx}: bound must be memory|compute")
        require(k, "binding_ceiling", str)

    phases = require(doc, "phases", list)
    for p in phases:
        if not isinstance(p, dict):
            fail("phase entry is not an object")
        ctx = (f"phase row ({p.get('machine')}, {p.get('variant')}, "
               f"{p.get('kernel')})")
        for field in ("machine", "variant", "kernel", "size",
                      "protocol"):
            require(p, field, str)
        if (p["machine"], p["variant"]) not in scenario_keys:
            fail(f"{ctx}: no matching scenario")
        if finite_number(p, "period", ctx) <= 0:
            fail(f"{ctx}: period must be positive")
        for field in ("total_flops", "total_traffic_bytes",
                      "total_seconds"):
            finite_number(p, field, ctx)
        points = require(p, "points", list)
        if not points:
            fail(f"{ctx}: points list is empty")
        flops = traffic = 0.0
        for pt in points:
            if not isinstance(pt, dict):
                fail(f"{ctx}: point entry is not an object")
            for field in ("perf", "flops", "traffic_bytes", "seconds"):
                finite_number(pt, field, ctx)
            if "oi" not in pt:
                fail(f"{ctx}: point missing key 'oi'")
            flops += pt["flops"]
            traffic += pt["traffic_bytes"]
        # Interval deltas are additive by construction; allow FP slack.
        if abs(flops - p["total_flops"]) > max(1e-6 * flops, 1e-6):
            fail(f"{ctx}: point flops sum {flops} != total "
                 f"{p['total_flops']}")
        if abs(traffic - p["total_traffic_bytes"]) > \
                max(1e-6 * traffic, 1e-6):
            fail(f"{ctx}: point traffic sum {traffic} != total "
                 f"{p['total_traffic_bytes']}")

    print(f"{sys.argv[1]}: schema OK "
          f"(analysis v{version:g}: {len(scenarios)} scenarios, "
          f"{len(kernels)} kernel rows, {len(phases)} phase rows)")


def check_metrics(doc: dict) -> None:
    if require(doc, "schema_version", int) != 1:
        fail("unknown schema_version (expected 1)")
    require(doc, "campaign", str)

    metrics = require(doc, "metrics", dict)
    if not metrics:
        fail("metrics object is empty (was telemetry enabled?)")
    leaves = 0
    for group, members in metrics.items():
        if not isinstance(members, dict):
            fail(f"metrics group '{group}' is not an object")
        if not members:
            fail(f"metrics group '{group}' is empty")
        for name, value in members.items():
            ctx = f"metric {group}.{name}"
            if isinstance(value, dict):
                # Histogram summary from Registry::renderJsonGrouped.
                for field in ("count", "sum", "p50", "p90", "p99"):
                    finite_number(value, field, ctx)
                if value["count"] < 0:
                    fail(f"{ctx}: count must be non-negative")
            elif isinstance(value, (int, float)):
                if isinstance(value, float) and not math.isfinite(value):
                    fail(f"{ctx}: value is not finite")
            else:
                fail(f"{ctx}: value must be a number or a histogram "
                     f"summary object")
            leaves += 1

    # A campaign run with telemetry enabled always reports at least its
    # own cache-probe counters; an empty campaign group means the
    # executor instrumentation regressed.
    if "campaign" not in metrics:
        fail("metrics group 'campaign' missing (executor counters)")

    # Fault-injection families only appear once a failpoint arms or a
    # transient I/O retry fires; when present they must be well-formed
    # non-negative scalars (chaos runs gate on these moving).
    for group in ("failpoint", "retry"):
        for name, value in metrics.get(group, {}).items():
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or value < 0:
                fail(f"metric {group}.{name}: fault-injection "
                     f"counters must be non-negative numbers, "
                     f"got {value!r}")

    print(f"{sys.argv[1]}: schema OK "
          f"(metrics v1: campaign '{doc['campaign']}', "
          f"{len(metrics)} groups, {leaves} metrics)")


def check_series(doc: dict) -> None:
    if require(doc, "schema_version", int) != 1:
        fail("unknown schema_version (expected 1)")
    if finite_number(doc, "interval_seconds", "series") <= 0:
        fail("interval_seconds must be positive")
    capacity = require(doc, "capacity", int)
    if capacity < 2:
        fail("capacity must be >= 2")
    if require(doc, "samples", int) < 0:
        fail("samples must be non-negative")

    series = require(doc, "series", list)
    names = set()
    points_total = 0
    for s in series:
        if not isinstance(s, dict):
            fail("series entry is not an object")
        name = require(s, "name", str)
        if name in names:
            fail(f"duplicate series '{name}'")
        names.add(name)
        ctx = f"series '{name}'"
        require(s, "unit", str)
        points = require(s, "points", list)
        # The memory bound the sampler promises: a ring never holds
        # more than its fixed capacity, whatever the process uptime.
        if len(points) > capacity:
            fail(f"{ctx}: {len(points)} points exceed ring capacity "
                 f"{capacity}")
        for p in points:
            if p is None:
                continue  # non-finite values encode as null
            if isinstance(p, bool) or not isinstance(p, (int, float)):
                fail(f"{ctx}: point must be a number or null")
            if not math.isfinite(p):
                fail(f"{ctx}: point is not finite")
        points_total += len(points)

    print(f"{sys.argv[1]}: schema OK "
          f"(series v1: {len(series)} series, {points_total} points, "
          f"capacity {capacity})")


def check_profile(doc: dict) -> None:
    if require(doc, "schema_version", int) != 1:
        fail("unknown schema_version (expected 1)")
    require(doc, "label", str)
    hz = require(doc, "hz", int)
    if hz <= 0:
        fail("hz must be positive")
    if finite_number(doc, "seconds", "profile") < 0:
        fail("seconds must be non-negative")
    samples = require(doc, "samples", int)
    if samples < 0:
        fail("samples must be non-negative")
    if require(doc, "dropped", int) < 0:
        fail("dropped must be non-negative")

    stacks = require(doc, "stacks", list)
    seen = set()
    total = 0
    for s in stacks:
        if not isinstance(s, dict):
            fail("stack entry is not an object")
        stack = require(s, "stack", str)
        if not stack:
            fail("stack string must be non-empty")
        if stack in seen:
            fail(f"duplicate collapsed stack '{stack}'")
        seen.add(stack)
        count = require(s, "count", int)
        if count <= 0:
            fail(f"stack '{stack}': count must be positive")
        total += count
    # Symbolization may drop frames but never invents samples.
    if total > samples:
        fail(f"stack counts sum to {total} > {samples} samples")

    print(f"{sys.argv[1]}: schema OK "
          f"(profile v1: '{doc['label']}', {samples} samples at "
          f"{hz} Hz, {len(stacks)} collapsed stacks)")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py <bench.json | analysis.json>")
    try:
        with open(sys.argv[1]) as f:
            # parse_constant traps Infinity/NaN/-Infinity tokens that
            # json.load would otherwise accept; analysis.json must be
            # strict JSON (non-finite encodes as null).
            doc = json.load(
                f,
                parse_constant=lambda tok: fail(
                    f"non-strict JSON token '{tok}' "
                    f"(non-finite values must encode as null)"))
    except (OSError, json.JSONDecodeError, ValueError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict):
        fail("top-level value is not an object")
    if doc.get("bench") == "service_throughput":
        check_service(doc)
    elif "bench" in doc:
        check_bench(doc)
    elif doc.get("kind") == "rfl-analysis":
        check_analysis(doc)
    elif doc.get("kind") == "rfl-metrics":
        check_metrics(doc)
    elif doc.get("kind") == "rfl-series":
        check_series(doc)
    elif doc.get("kind") == "rfl-profile":
        check_profile(doc)
    else:
        fail("unrecognized document: not a BENCH_*.json ('bench' key), "
             "an analysis.json (kind=rfl-analysis), a metrics.json "
             "(kind=rfl-metrics), a series export (kind=rfl-series), "
             "or a profile capture (kind=rfl-profile)")


if __name__ == "__main__":
    main()
