#!/usr/bin/env bash
# Chaos-test the roofline-as-a-service daemon: run it with failpoints
# armed (RFL_FAILPOINTS) and assert the robustness contract holds
# under injected faults —
#   * transient cache-append faults are absorbed by retry (the
#     campaign still succeeds, rfl_retry_* counters move);
#   * a campaign with a spent `timeout =` budget lands in timed_out
#     (504 on artifacts, well-formed status JSON) while a concurrent
#     patient campaign completes;
#   * an injected artifact-stream fault degrades to a clean 503, and
#     the next fetch succeeds;
#   * dropped/garbled connections (http.accept / http.recv faults)
#     never crash or wedge the daemon;
#   * dedup still holds, /metricsz exposes rfl_failpoint_* and
#     rfl_retry_* families, and SIGTERM still exits 0.
# Run by CI in both the Release and ASan/UBSan jobs:
#   tools/chaos_smoke.sh <build-dir>
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Deterministic chaos: probabilistic failpoints draw from per-name
# streams seeded by the name, so this exact schedule reproduces.
#   cache.spill.append  first two evaluations fail -> exercised retry
#   job.simulate        every simulate stage stalls 200 ms; campaign A
#                       needs >= 400 ms of stalls (ceiling before
#                       measures), so its 0.3 s budget must blow
#   api.stream          first artifact fetch fails -> clean 503
#   http.recv           10% of requests die mid-read
#   http.accept         5% of connections dropped at accept
export RFL_FAILPOINTS="cache.spill.append=error:count=2,\
job.simulate=sleep(200),\
api.stream=error:count=1,\
http.recv=error:p=0.1,\
http.accept=error:p=0.05"

"$BUILD"/roofline_serve --port 0 --port-file "$WORK/port" --quiet \
    --out "$WORK/out" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVE_PID" || { echo "FAIL: daemon died on startup"; \
        cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: no port file"; exit 1; }
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "daemon (chaos mode) on $BASE"
grep -q "failpoint(s) armed" "$WORK/serve.log" ||
    { echo "FAIL: daemon did not arm RFL_FAILPOINTS"; exit 1; }

# Every request may be eaten by http.recv/http.accept faults; a
# well-behaved client retries. The daemon must survive all of it.
req() { # req <curl args...> -> body on stdout
    local out
    for _ in $(seq 1 30); do
        if out=$(curl -fsS --max-time 10 "$@" 2>/dev/null); then
            printf '%s' "$out"
            return 0
        fi
        kill -0 "$SERVE_PID" || { echo "FAIL: daemon died" >&2; \
            cat "$WORK/serve.log" >&2; return 1; }
        sleep 0.05
    done
    echo "FAIL: request $* never succeeded in 30 tries" >&2
    return 1
}
status_of() { # status_of <url> -> HTTP status code (retries transport)
    local code
    for _ in $(seq 1 30); do
        code=$(curl -s --max-time 10 -o /dev/null -w '%{http_code}' \
            "$1" || true)
        [ "$code" != 000 ] && { printf '%s' "$code"; return 0; }
        sleep 0.05
    done
    printf '000'
}

req "$BASE/healthz" | grep -q '"status":"ok"'

# Campaign A: a whole-run budget the injected simulate stalls are
# guaranteed to blow (two dependent 200 ms stalls > 0.3 s).
SPEC_TIMEOUT='name = chaos-timeout
machine = small
kernel = daxpy:n=4096
kernel = sum:n=4096
timeout = 0.3
variant = cold-1c: protocol=cold cores=0 reps=1'

# Campaign B: same shape, no budget — must complete despite the same
# stalls and the injected cache-append faults.
SPEC_PATIENT='name = chaos-patient
machine = small
kernel = daxpy:n=4096
kernel = sum:n=4096
variant = cold-1c: protocol=cold cores=0 reps=1'

# Specs go through files, not pipes: req() retries after injected
# connection faults, and a pipe cannot be replayed.
printf '%s\n' "$SPEC_TIMEOUT" > "$WORK/spec_a"
printf '%s\n' "$SPEC_PATIENT" > "$WORK/spec_b"

ID_A=$(req -X POST --data-binary @"$WORK/spec_a" \
    "$BASE/v1/campaigns" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
ID_B=$(req -X POST --data-binary @"$WORK/spec_b" \
    "$BASE/v1/campaigns" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "tickets: timeout=$ID_A patient=$ID_B"

poll() { # poll <id> <want-state> <fail-states...>
    local id=$1 want=$2 state
    shift 2
    for _ in $(seq 1 600); do
        state=$(req "$BASE/v1/campaigns/$id" | python3 -c \
            'import json,sys; print(json.load(sys.stdin)["state"])')
        [ "$state" = "$want" ] && return 0
        for bad in "$@"; do
            [ "$state" = "$bad" ] && { echo "FAIL: $id hit '$state'" \
                "(wanted '$want')"; req "$BASE/v1/campaigns/$id"; \
                return 1; }
        done
        sleep 0.1
    done
    echo "FAIL: $id stuck (wanted '$want')"
    return 1
}

poll "$ID_A" timed_out done failed
poll "$ID_B" done failed timed_out

# The timed-out ticket reports a well-formed status with the deadline
# error, and its artifact routes answer 504 — never a hang.
req "$BASE/v1/campaigns/$ID_A" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["state"] == "timed_out", s
assert "deadline exceeded" in s["error"], s
print("timed_out status OK:", s["error"])'
CODE=$(status_of "$BASE/v1/campaigns/$ID_A/analysis")
[ "$CODE" = 504 ] || { echo "FAIL: timed-out analysis gave $CODE," \
    "want 504"; exit 1; }

# api.stream=error:count=1 eats exactly one artifact fetch: first a
# clean 503, then the real document.
CODE=$(status_of "$BASE/v1/campaigns/$ID_B/analysis")
[ "$CODE" = 503 ] || { echo "FAIL: injected stream fault gave $CODE," \
    "want 503"; exit 1; }
req "$BASE/v1/campaigns/$ID_B/analysis" > "$WORK/analysis.json"
python3 tools/check_bench_schema.py "$WORK/analysis.json"

# Dedup must hold under chaos: resubmitting B joins the done ticket.
req -X POST --data-binary @"$WORK/spec_b" "$BASE/v1/campaigns" |
    grep -q '"deduplicated":true'

# Connection churn: hammer endpoints through the lossy accept/recv
# path. Individual requests may die; the daemon must not.
for i in $(seq 1 60); do
    curl -s --max-time 5 -o /dev/null "$BASE/healthz" || true
    curl -s --max-time 5 -o /dev/null "$BASE/statsz" || true
done
kill -0 "$SERVE_PID" || { echo "FAIL: daemon died under churn"; \
    cat "$WORK/serve.log"; exit 1; }
req "$BASE/healthz" | grep -q '"status":"ok"'

# The registry must expose the chaos itself: failpoint triggers and
# absorbed retries are first-class metric families.
req "$BASE/metricsz" > "$WORK/metrics.prom"
python3 - "$WORK/metrics.prom" <<'EOF'
import sys

families = {}
for line in open(sys.argv[1]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    family = name.split("{", 1)[0]
    families[family] = families.get(family, 0.0) + float(value)

def require_positive(family):
    if families.get(family, 0.0) <= 0.0:
        sys.exit(f"FAIL: /metricsz {family} = "
                 f"{families.get(family, '<absent>')}; chaos run must "
                 f"move fault-injection counters")

require_positive("rfl_failpoint_triggers_total")
require_positive("rfl_retry_attempts_total")
require_positive("rfl_retry_success_total")
require_positive("rfl_queue_timed_out")
require_positive("rfl_queue_executed_total")
print("chaos metricsz OK:",
      f"triggers={families['rfl_failpoint_triggers_total']:.0f}",
      f"retries={families['rfl_retry_attempts_total']:.0f}")
EOF

# Graceful shutdown still works with failpoints armed.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "FAIL: daemon exited non-zero on SIGTERM under chaos"
    cat "$WORK/serve.log"
    exit 1
fi
grep -q "shutting down gracefully" "$WORK/serve.log"
echo "chaos smoke OK"
