#!/usr/bin/env bash
# Smoke-test the roofline-as-a-service daemon end to end:
#   start roofline_serve on an ephemeral port -> submit a small
#   campaign -> poll to completion -> validate analysis.json against
#   the schema checker -> exercise dedup + statsz -> scrape /metricsz
#   and /tracez (job counters must have moved) -> SIGTERM and assert a
#   clean (exit 0) shutdown.
# Run by CI in both the Release and ASan/UBSan jobs:
#   tools/service_smoke.sh <build-dir>
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$BUILD"/roofline_serve --port 0 --port-file "$WORK/port" --quiet \
    --out "$WORK/out" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVE_PID" || { echo "FAIL: daemon died on startup"; \
        cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: no port file"; exit 1; }
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "daemon on $BASE"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'

SPEC='name = ci-smoke
machine = small
kernel = daxpy:n=4096
kernel = sum:n=4096
variant = cold-1c: protocol=cold cores=0 reps=1'

ID=$(printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "ticket $ID"

STATE=""
for _ in $(seq 1 300); do
    STATE=$(curl -fsS "$BASE/v1/campaigns/$ID" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "FAIL: campaign failed"; \
        curl -fsS "$BASE/v1/campaigns/$ID"; exit 1; }
    sleep 0.1
done
[ "$STATE" = done ] || { echo "FAIL: campaign stuck in '$STATE'"; exit 1; }

curl -fsS "$BASE/v1/campaigns/$ID/analysis" > "$WORK/analysis.json"
python3 tools/check_bench_schema.py "$WORK/analysis.json"

# Artifact endpoints stream usable documents. (Capture to files:
# grep -q closing the pipe early would fail curl under pipefail.)
curl -fsS "$BASE/v1/campaigns/$ID/report.html" > "$WORK/report.html"
grep -q '<!DOCTYPE html>' "$WORK/report.html"
curl -fsS "$BASE/v1/campaigns/$ID/roofline.svg" > "$WORK/roofline.svg"
grep -q '<svg' "$WORK/roofline.svg"

# An identical resubmission deduplicates instead of re-executing.
printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" | grep -q '"deduplicated":true'
curl -fsS "$BASE/statsz" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["queue"]["executed"] == 1, s
assert s["queue"]["deduplicated"] == 1, s
assert s["cache"]["stores"] >= 2, s
print("statsz OK:", json.dumps(s["queue"]))'

# The Prometheus exposition serves the same registry: the job we just
# ran must be visible in the counters, not scraped as all-zeros.
curl -fsS "$BASE/metricsz" > "$WORK/metrics.prom"
python3 - "$WORK/metrics.prom" <<'EOF'
import sys

values = {}
for line in open(sys.argv[1]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    values[name] = float(value)

def require_positive(metric):
    if values.get(metric, 0.0) <= 0.0:
        sys.exit(f"FAIL: /metricsz {metric} = "
                 f"{values.get(metric, '<absent>')}; job counters "
                 f"must move after an executed campaign")

require_positive("rfl_queue_executed_total")
require_positive("rfl_queue_submitted_total")
require_positive("rfl_queue_deduplicated_total")
require_positive("rfl_queue_turnaround_seconds_count")
require_positive("rfl_campaign_job_seconds_count")
require_positive("rfl_http_requests_total")
require_positive("rfl_sim_records_total")
print("metricsz OK:",
      f"executed={values['rfl_queue_executed_total']:.0f}",
      f"sim_records={values['rfl_sim_records_total']:.0f}")
EOF

# The finished job's span tree is served as chrome://tracing JSON.
curl -fsS "$BASE/tracez?job=$ID" > "$WORK/trace.json"
python3 - "$WORK/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e["name"] for e in events}
assert {"campaign", "simulate", "encode"} <= names, names
print(f"tracez OK: {len(events)} spans")
EOF

# Graceful shutdown: SIGTERM must end the process with exit code 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "FAIL: daemon exited non-zero on SIGTERM"
    cat "$WORK/serve.log"
    exit 1
fi
grep -q "shutting down gracefully" "$WORK/serve.log"
echo "service smoke OK"
