#!/usr/bin/env bash
# Smoke-test the roofline-as-a-service daemon end to end:
#   start roofline_serve on an ephemeral port -> submit a small
#   campaign -> poll to completion -> validate analysis.json against
#   the schema checker -> exercise dedup + statsz -> SIGTERM and
#   assert a clean (exit 0) shutdown.
# Run by CI in both the Release and ASan/UBSan jobs:
#   tools/service_smoke.sh <build-dir>
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$BUILD"/roofline_serve --port 0 --port-file "$WORK/port" --quiet \
    --out "$WORK/out" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVE_PID" || { echo "FAIL: daemon died on startup"; \
        cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: no port file"; exit 1; }
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "daemon on $BASE"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'

SPEC='name = ci-smoke
machine = small
kernel = daxpy:n=4096
kernel = sum:n=4096
variant = cold-1c: protocol=cold cores=0 reps=1'

ID=$(printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "ticket $ID"

STATE=""
for _ in $(seq 1 300); do
    STATE=$(curl -fsS "$BASE/v1/campaigns/$ID" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "FAIL: campaign failed"; \
        curl -fsS "$BASE/v1/campaigns/$ID"; exit 1; }
    sleep 0.1
done
[ "$STATE" = done ] || { echo "FAIL: campaign stuck in '$STATE'"; exit 1; }

curl -fsS "$BASE/v1/campaigns/$ID/analysis" > "$WORK/analysis.json"
python3 tools/check_bench_schema.py "$WORK/analysis.json"

# Artifact endpoints stream usable documents. (Capture to files:
# grep -q closing the pipe early would fail curl under pipefail.)
curl -fsS "$BASE/v1/campaigns/$ID/report.html" > "$WORK/report.html"
grep -q '<!DOCTYPE html>' "$WORK/report.html"
curl -fsS "$BASE/v1/campaigns/$ID/roofline.svg" > "$WORK/roofline.svg"
grep -q '<svg' "$WORK/roofline.svg"

# An identical resubmission deduplicates instead of re-executing.
printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" | grep -q '"deduplicated":true'
curl -fsS "$BASE/statsz" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["queue"]["executed"] == 1, s
assert s["queue"]["deduplicated"] == 1, s
assert s["cache"]["stores"] >= 2, s
print("statsz OK:", json.dumps(s["queue"]))'

# Graceful shutdown: SIGTERM must end the process with exit code 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "FAIL: daemon exited non-zero on SIGTERM"
    cat "$WORK/serve.log"
    exit 1
fi
grep -q "shutting down gracefully" "$WORK/serve.log"
echo "service smoke OK"
