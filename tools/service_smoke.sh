#!/usr/bin/env bash
# Smoke-test the roofline-as-a-service daemon end to end:
#   start roofline_serve on an ephemeral port -> assert the /healthz
#   pmu block matches `roofline_campaign --pmu-probe` (and degrades
#   cleanly without perf_event privilege) -> submit a small
#   campaign -> poll to completion -> validate analysis.json against
#   the schema checker -> exercise dedup + statsz -> scrape /metricsz
#   and /tracez (job counters must have moved) -> assert the
#   time-series sampler advanced across submit->done (/seriesz +
#   /dashz) -> exercise /profilez (200 + schema-valid profile when the
#   profiler is compiled in, clean 501 when not; set
#   RFL_EXPECT_PROFILER=0/1 to pin the expectation) -> SIGTERM and
#   assert a clean (exit 0) shutdown.
# Run by CI in both the Release and ASan/UBSan jobs:
#   tools/service_smoke.sh <build-dir>
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# 100 ms sampling so the submit->done window spans many series ticks.
"$BUILD"/roofline_serve --port 0 --port-file "$WORK/port" --quiet \
    --sample-interval-ms 100 \
    --out "$WORK/out" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVE_PID" || { echo "FAIL: daemon died on startup"; \
        cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "FAIL: no port file"; exit 1; }
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "daemon on $BASE"

curl -fsS "$BASE/healthz" > "$WORK/health.json"
grep -q '"status":"ok"' "$WORK/health.json"
# Build identity must be attributable: sha/compiler/simd in /healthz.
python3 - "$WORK/health.json" <<'EOF'
import json, sys
build = json.load(open(sys.argv[1]))["build"]
for key in ("git_sha", "compiler", "build_type", "simd", "profiler"):
    assert key in build, (key, build)
print("healthz build OK:", build["git_sha"], build["compiler"],
      build["simd"], "profiler" if build["profiler"] else "no-profiler")
EOF

# PMU capability: the /healthz pmu block must agree with the CLI probe
# (same process-independent answer), and an unprivileged host must
# degrade to a well-formed available=false block — never an error.
"$BUILD"/roofline_campaign --pmu-probe > "$WORK/pmu.txt"
grep -q '^pmu: available=' "$WORK/pmu.txt"
PROBE_LINE=$(grep '^pmu: ' "$WORK/pmu.txt")
python3 - "$WORK/health.json" "$PROBE_LINE" <<'EOF'
import json, sys
pmu = json.load(open(sys.argv[1]))["pmu"]
for key in ("available", "paranoid", "events_live", "events_dead",
            "events"):
    assert key in pmu, (key, pmu)
cli = dict(kv.split("=") for kv in sys.argv[2].split()[1:])
assert pmu["available"] == (cli["available"] == "true"), (pmu, cli)
assert int(pmu["paranoid"]) == int(cli["paranoid"]), (pmu, cli)
assert int(pmu["events_live"]) == int(cli["events_live"]), (pmu, cli)
assert int(pmu["events_dead"]) == int(cli["events_dead"]), (pmu, cli)
assert len(pmu["events"]) == \
    int(cli["events_live"]) + int(cli["events_dead"]), pmu
for e in pmu["events"]:
    assert e["source"] in ("default", "env"), e
    assert isinstance(e["live"], bool), e
if not pmu["available"]:
    assert int(pmu["events_live"]) == 0, pmu
print("healthz pmu OK:",
      "available" if pmu["available"] else
      "unavailable (degraded cleanly)",
      "live=%d dead=%d" % (pmu["events_live"], pmu["events_dead"]))
EOF

# Baseline sampler position before the campaign runs.
SAMPLES_BEFORE=$(curl -fsS "$BASE/seriesz" | python3 -c \
    'import json,sys; print(json.load(sys.stdin)["samples"])')

SPEC='name = ci-smoke
machine = small
kernel = daxpy:n=4096
kernel = sum:n=4096
variant = cold-1c: protocol=cold cores=0 reps=1'

ID=$(printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "ticket $ID"

STATE=""
for _ in $(seq 1 300); do
    STATE=$(curl -fsS "$BASE/v1/campaigns/$ID" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "FAIL: campaign failed"; \
        curl -fsS "$BASE/v1/campaigns/$ID"; exit 1; }
    sleep 0.1
done
[ "$STATE" = done ] || { echo "FAIL: campaign stuck in '$STATE'"; exit 1; }

curl -fsS "$BASE/v1/campaigns/$ID/analysis" > "$WORK/analysis.json"
python3 tools/check_bench_schema.py "$WORK/analysis.json"

# Artifact endpoints stream usable documents. (Capture to files:
# grep -q closing the pipe early would fail curl under pipefail.)
curl -fsS "$BASE/v1/campaigns/$ID/report.html" > "$WORK/report.html"
grep -q '<!DOCTYPE html>' "$WORK/report.html"
curl -fsS "$BASE/v1/campaigns/$ID/roofline.svg" > "$WORK/roofline.svg"
grep -q '<svg' "$WORK/roofline.svg"

# An identical resubmission deduplicates instead of re-executing.
printf '%s\n' "$SPEC" | curl -fsS -X POST --data-binary @- \
    "$BASE/v1/campaigns" | grep -q '"deduplicated":true'
curl -fsS "$BASE/statsz" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["queue"]["executed"] == 1, s
assert s["queue"]["deduplicated"] == 1, s
assert s["cache"]["stores"] >= 2, s
print("statsz OK:", json.dumps(s["queue"]))'

# The Prometheus exposition serves the same registry: the job we just
# ran must be visible in the counters, not scraped as all-zeros.
curl -fsS "$BASE/metricsz" > "$WORK/metrics.prom"
python3 - "$WORK/metrics.prom" <<'EOF'
import sys

values = {}
for line in open(sys.argv[1]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    values[name] = float(value)

def require_positive(metric):
    if values.get(metric, 0.0) <= 0.0:
        sys.exit(f"FAIL: /metricsz {metric} = "
                 f"{values.get(metric, '<absent>')}; job counters "
                 f"must move after an executed campaign")

require_positive("rfl_queue_executed_total")
require_positive("rfl_queue_submitted_total")
require_positive("rfl_queue_deduplicated_total")
require_positive("rfl_queue_turnaround_seconds_count")
require_positive("rfl_campaign_job_seconds_count")
require_positive("rfl_http_requests_total")
require_positive("rfl_sim_records_total")
# The pmu gauges must exist (the /healthz probe registered them) even
# when the host denies perf_event and their value is legitimately 0.
for metric in ("rfl_pmu_events_live", "rfl_pmu_events_dead"):
    if metric not in values:
        sys.exit(f"FAIL: /metricsz is missing {metric}; the pmu "
                 "metric family must register on probe")
print("metricsz OK:",
      f"executed={values['rfl_queue_executed_total']:.0f}",
      f"sim_records={values['rfl_sim_records_total']:.0f}")
EOF

# The finished job's span tree is served as chrome://tracing JSON.
curl -fsS "$BASE/tracez?job=$ID" > "$WORK/trace.json"
python3 - "$WORK/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e["name"] for e in events}
assert {"campaign", "simulate", "encode"} <= names, names
print(f"tracez OK: {len(events)} spans")
EOF

# The job's resource accounting rode along: status JSON carries a
# resources object. (A millisecond-scale smoke job can legitimately
# bill 0 CPU at rusage tick granularity, so gate on shape + rss.)
curl -fsS "$BASE/v1/campaigns/$ID" | python3 -c '
import json, sys
res = json.load(sys.stdin)["resources"]
for key in ("cpu_user_seconds", "cpu_system_seconds", "maxrss_bytes",
            "minor_faults", "major_faults"):
    assert res[key] >= 0, (key, res)
assert res["maxrss_bytes"] > 0, res
print("resources OK: %.3fs usr, %d MiB peak rss" % (
    res["cpu_user_seconds"], res["maxrss_bytes"] // (1 << 20)))'

# The time-series sampler must have advanced across submit->done and
# the export must be a schema-valid rfl-series document whose queue
# counters saw the executed campaign.
for _ in $(seq 1 50); do
    curl -fsS "$BASE/seriesz" > "$WORK/series.json"
    SAMPLES_NOW=$(python3 -c 'import json,sys;
print(json.load(open(sys.argv[1]))["samples"])' "$WORK/series.json")
    [ "$SAMPLES_NOW" -gt $((SAMPLES_BEFORE + 2)) ] && break
    sleep 0.1
done
[ "$SAMPLES_NOW" -gt $((SAMPLES_BEFORE + 2)) ] || {
    echo "FAIL: sampler stuck at $SAMPLES_NOW samples" \
         "(was $SAMPLES_BEFORE before submit)"; exit 1; }
python3 tools/check_bench_schema.py "$WORK/series.json"
python3 - "$WORK/series.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
series = {s["name"]: s["points"] for s in doc["series"]}
assert "rfl_queue_depth" in series, sorted(series)[:20]
rate = series.get("rfl_queue_executed_total:rate", [])
assert any(p and p > 0 for p in rate), \
    "executed-campaign rate never moved: %r" % rate
print(f"seriesz OK: {len(series)} series, {doc['samples']} samples")
EOF

# The dashboard is one self-contained page: sparklines inline, no
# scripts, no external fetches.
curl -fsS "$BASE/dashz" > "$WORK/dash.html"
grep -q '<!DOCTYPE html>' "$WORK/dash.html"
grep -q '<svg' "$WORK/dash.html"
grep -q 'Queue depth' "$WORK/dash.html"
! grep -q '<script' "$WORK/dash.html"
echo "dashz OK: $(wc -c < "$WORK/dash.html") bytes, self-contained"

# /profilez: a real capture when compiled in, a clean 501 when not.
# RFL_EXPECT_PROFILER=0/1 pins the expectation (CI's no-SIMD job
# builds with -DRFL_PROFILER=OFF and exports 0).
PROFILE_CODE=$(curl -sS -o "$WORK/profile.json" -w '%{http_code}' \
    "$BASE/profilez?seconds=0.3")
case "${RFL_EXPECT_PROFILER:-}" in
    0) [ "$PROFILE_CODE" = 501 ] || { echo "FAIL: expected 501 from" \
           "/profilez without RFL_PROFILER, got $PROFILE_CODE"; exit 1; } ;;
    1) [ "$PROFILE_CODE" = 200 ] || { echo "FAIL: expected 200 from" \
           "/profilez, got $PROFILE_CODE"; exit 1; } ;;
    *) [ "$PROFILE_CODE" = 200 ] || [ "$PROFILE_CODE" = 501 ] || {
           echo "FAIL: /profilez returned $PROFILE_CODE"; exit 1; } ;;
esac
if [ "$PROFILE_CODE" = 200 ]; then
    python3 tools/check_bench_schema.py "$WORK/profile.json"
    curl -fsS "$BASE/profilez?seconds=0.2&format=svg" > "$WORK/flame.svg"
    grep -q '<svg' "$WORK/flame.svg"
    echo "profilez OK: capture + flamegraph served"
else
    grep -q 'RFL_PROFILER' "$WORK/profile.json"
    echo "profilez OK: clean 501 without RFL_PROFILER"
fi

# Graceful shutdown: SIGTERM must end the process with exit code 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "FAIL: daemon exited non-zero on SIGTERM"
    cat "$WORK/serve.log"
    exit 1
fi
grep -q "shutting down gracefully" "$WORK/serve.log"
echo "service smoke OK"
