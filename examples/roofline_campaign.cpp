/**
 * @file
 * roofline_campaign — the campaign subsystem's command-line front-end.
 *
 * Runs a declarative grid of roofline experiments (machines x kernels x
 * variants) across host threads with content-addressed result caching:
 *
 *   roofline_campaign                          # built-in demo campaign
 *   roofline_campaign --file my_campaign.txt   # your own grid
 *   roofline_campaign --threads 8              # host parallelism
 *   roofline_campaign --cache results.jsonl    # persistent cache
 *   roofline_campaign --cache-stats            # hit/miss/size report
 *   roofline_campaign --cache-gc               # drop dead configs,
 *                                              # rewrite the spill
 *   roofline_campaign --telemetry-dir tel/     # metrics.json +
 *                                              # trace.jsonl (load the
 *                                              # trace in
 *                                              # chrome://tracing)
 *   roofline_campaign --profile-out prof/      # profile the run: CPU
 *                                              # samples collapsed to
 *                                              # profile.json +
 *                                              # flamegraph.svg
 *   roofline_campaign --pmu-probe              # print the host's
 *                                              # perf_event capability
 *                                              # table and exit
 *
 * Campaign file format (see src/campaign/spec.hh):
 *
 *   name = overview
 *   machine = default            # default | small | scalar | @file.cfg
 *   kernel = triad:n=4194304
 *   variant = cold-1c: protocol=cold cores=0 reps=1
 *   variant = cold-1s: cores=0-3 numa=local prefetch=on
 *
 * Re-running the same campaign against the same cache file answers
 * every job from the cache — only the delta of an edited campaign is
 * simulated.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>

#include "campaign/executor.hh"
#include "campaign/job_graph.hh"
#include "campaign/sink.hh"
#include "pmu/perf_backend.hh"
#include "support/cli.hh"
#include "support/csv.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/sim_counters.hh"
#include "telemetry/span.hh"

namespace
{

const char *const demo_campaign =
    "name = demo\n"
    "machine = default\n"
    "kernel = sum:n=1048576\n"
    "kernel = daxpy:n=1048576\n"
    "kernel = triad:n=4194304\n"
    "kernel = dgemm-opt:n=160\n"
    "kernel = stencil3:n=1048576\n"
    "variant = cold-1c: protocol=cold cores=0 reps=1\n"
    "variant = cold-1s: protocol=cold cores=0-3 reps=1 numa=local\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace rfl;
    namespace cp = rfl::campaign;

    Cli cli;
    cli.addOption("file", "campaign description file (default: built-in "
                          "demo campaign)");
    cli.addOption("threads", "host worker threads (0 = all hardware "
                             "threads)", "0");
    cli.addOption("cache", "JSONL result-cache path (empty = in-memory "
                           "only)", "<out>/cache/campaign.jsonl");
    cli.addOption("out", "artifact directory (default: $RFL_OUT_DIR or "
                         "./out)");
    cli.addOption("cache-stats",
                  "print cache hit/miss/size statistics after the run");
    cli.addOption("cache-gc",
                  "compact the cache after the run: drop entries whose "
                  "machine config is not in this campaign, rewrite the "
                  "spill file");
    cli.addOption("telemetry-dir",
                  "write metrics.json and trace.jsonl (chrome://tracing "
                  "format) into this directory; also enables the "
                  "simulator's hot-path counters");
    cli.addOption("profile-out",
                  "sample the run with the SIGPROF profiler and write "
                  "profile.json + flamegraph.svg into this directory "
                  "(requires -DRFL_PROFILER=ON)");
    cli.addOption("pmu-probe",
                  "probe the host's perf_event capability (paranoid "
                  "level, per-event liveness), print the event table "
                  "and exit");
    cli.parse(argc, argv);

    if (cli.has("pmu-probe")) {
        // Capability report, not a measurement: open/close each
        // configured event once and say what this host would give a
        // `backend = perf` campaign. Exit 0 either way — an unprivileged
        // host is an answer, not an error.
        const pmu::PmuProbe probe = pmu::PerfEventBackend::probe();
        Table t({"event", "source", "type:config", "live"});
        for (const pmu::ProbedEvent &e : probe.events) {
            char code[32];
            std::snprintf(code, sizeof(code), "%u:0x%llx",
                          e.mapping.type,
                          static_cast<unsigned long long>(
                              e.mapping.config));
            t.addRow({pmu::eventName(e.mapping.id),
                      e.mapping.fromEnv ? "env" : "default", code,
                      e.live ? "yes" : "no"});
        }
        t.print(std::cout);
        std::cout << "pmu: available="
                  << (probe.available ? "true" : "false")
                  << " paranoid=" << probe.paranoid
                  << " events_live=" << probe.liveCount()
                  << " events_dead=" << probe.deadCount() << "\n";
        std::cout << "host-identity: " << cp::hostIdentityHash()
                  << "\n";
        return 0;
    }

    const std::string out = cli.get("out", outputDirectory());
    ensureDirectory(out);

    const cp::CampaignSpec spec =
        cli.has("file") ? cp::loadCampaignSpec(cli.get("file"))
                        : cp::parseCampaignSpec(demo_campaign);

    std::string cache_path = cli.get("cache", "<default>");
    if (cache_path == "<default>") {
        ensureDirectory(out + "/cache");
        cache_path = out + "/cache/campaign.jsonl";
    }

    cp::ExecutorOptions exec;
    exec.threads = static_cast<int>(cli.getInt("threads", 0));
    // Recorded traces are artifacts: keep them with the rest of the
    // output (content-addressed, shared by every campaign using the
    // same out directory).
    exec.traceDir = out + "/traces";

    std::unique_ptr<cp::ResultCache> cache;
    if (!cache_path.empty()) {
        cache = std::make_unique<cp::ResultCache>(cache_path);
        exec.cache = cache.get();
    }

    const std::string telemetry_dir = cli.get("telemetry-dir", "");
    telemetry::Tracer tracer;
    telemetry::Tracer *const tracer_ptr =
        telemetry_dir.empty() ? nullptr : &tracer;
    if (tracer_ptr) {
        ensureDirectory(telemetry_dir);
        telemetry::setSimTelemetryEnabled(true);
    }

    const std::string profile_dir = cli.get("profile-out", "");
    bool profiling = false;
    if (!profile_dir.empty()) {
        if (!telemetry::Profiler::compiledIn()) {
            fatal("--profile-out requires a build with "
                  "-DRFL_PROFILER=ON");
        }
        ensureDirectory(profile_dir);
        profiling = telemetry::Profiler::instance().start({});
        if (!profiling)
            fatal("--profile-out: a profile is already running");
    }

    cp::CampaignRun run;
    {
        // Scope so the root span closes before the trace is written.
        telemetry::TraceScope traceScope(tracer_ptr);
        telemetry::Span root("campaign");
        root.attr("campaign", spec.name());
        run = cp::CampaignExecutor(exec).run(spec, tracer_ptr);
    }

    if (profiling) {
        const telemetry::Profile profile =
            telemetry::Profiler::instance().stop("campaign " +
                                                 spec.name());
        const std::string json_path = profile_dir + "/profile.json";
        std::ofstream json_out(json_path);
        if (!json_out)
            fatal("cannot write '%s'", json_path.c_str());
        json_out << telemetry::renderProfileJson(profile) << "\n";

        const std::string svg_path = profile_dir + "/flamegraph.svg";
        std::ofstream svg_out(svg_path);
        if (!svg_out)
            fatal("cannot write '%s'", svg_path.c_str());
        svg_out << telemetry::renderFlamegraphSvg(
            profile.stacks, "roofline_campaign " + spec.name());
        std::cout << "profile: " << profile.samples << " samples ("
                  << profile.dropped << " dropped) -> " << json_path
                  << ", " << svg_path << "\n";
    }
    cp::emitCampaign(run, out, std::cout);

    if (tracer_ptr) {
        const std::string trace_path = telemetry_dir + "/trace.jsonl";
        std::ofstream trace_out(trace_path);
        if (!trace_out)
            fatal("cannot write '%s'", trace_path.c_str());
        tracer.writeTraceJsonl(trace_out);

        const std::string metrics_path =
            telemetry_dir + "/metrics.json";
        std::ofstream metrics_out(metrics_path);
        if (!metrics_out)
            fatal("cannot write '%s'", metrics_path.c_str());
        metrics_out << "{\"kind\":\"rfl-metrics\",\"schema_version\":1,"
                    << "\"campaign\":\"" << spec.name()
                    << "\",\"metrics\":"
                    << telemetry::Registry::global().renderJsonGrouped()
                    << "}\n";
        std::cout << "telemetry: " << metrics_path << ", " << trace_path
                  << " (" << tracer.size() << " spans)\n";
    }
    if (cache) {
        std::cout << "cache: " << cache->size() << " entries in "
                  << cache->spillPath() << "\n";
    }

    if (cache && cli.has("cache-gc")) {
        // Live set = this campaign's machine configs; everything else
        // in the cache belongs to grids no longer run against it.
        std::set<std::string> live;
        for (const cp::MachineEntry &m : spec.machines())
            live.insert(hashToHex(m.config.stableHash()));
        const size_t dropped = cache->compact(live);
        std::cout << "cache-gc: dropped " << dropped
                  << " entr(ies) from dead configs, kept "
                  << cache->size() << ", rewrote "
                  << cache->spillPath() << "\n";
    }

    if (cache && cli.has("cache-stats")) {
        const cp::CacheStats cs = cache->stats();
        const size_t lookups = cs.hits + cs.misses;
        std::error_code ec;
        const auto bytes = std::filesystem::file_size(
            cache->spillPath(), ec);
        std::cout << "cache-stats: " << cache->size() << " entries, "
                  << cs.preloaded << " preloaded, " << cs.hits << "/"
                  << lookups << " lookups hit, " << cs.stores
                  << " stored this run, spill "
                  << (ec ? 0 : static_cast<uintmax_t>(bytes))
                  << " bytes\n";
    }
    return 0;
}
