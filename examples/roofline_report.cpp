/**
 * @file
 * roofline_report — the analysis subsystem's command-line front-end:
 * campaign results in, conclusions out.
 *
 * Report mode (default): run a campaign (result-cached like
 * roofline_campaign) and emit the analysis artifact set — one
 * self-contained SVG roofline per scenario, an HTML report bundling
 * plots and derived-metric tables, and a machine-readable
 * analysis.json (schema v4):
 *
 *   roofline_report                             # built-in gate campaign
 *   roofline_report --file my_campaign.txt
 *   roofline_report --out report --cache report/cache.jsonl
 *
 * Regression gating: compare the fresh analysis.json against a
 * committed baseline and exit non-zero when any kernel/metric moved
 * past its threshold (the CI gate):
 *
 *   roofline_report --baseline bench/analysis_baseline.json
 *
 * Pure diff mode (no simulation — compare two existing documents):
 *
 *   roofline_report --diff base_analysis.json new_analysis.json
 *
 * Sim-vs-silicon deltas: a campaign run with `backend = sim` AND
 * `backend = perf` produces paired rows; the delta table compares each
 * cell's hardware point against its simulated prediction. --hw-gate
 * turns the comparison directional: exit 1 when any available hardware
 * row lands more than --threshold-hw below the model (silicon beating
 * the model never gates; unavailable rows are named, never failed):
 *
 *   roofline_report --file both_backends.txt --hw-gate
 *
 * Thresholds are relative fractions: --threshold-perf 0.05 gates a
 * >5% performance drop; --threshold-oi, --threshold-traffic,
 * --threshold-seconds and --threshold-ceiling work the same way in
 * each metric's worse direction (see analysis/diff.hh).
 */

#include <iostream>

#include "analysis/diff.hh"
#include "campaign/executor.hh"
#include "campaign/sink.hh"
#include "support/cli.hh"
#include "support/csv.hh"

namespace
{

/**
 * The built-in campaign the CI regression gate runs: a handful of
 * kernels spanning memory- and compute-bound regimes, cold and warm
 * protocols, plus one phase-resolved entry. Small enough for the
 * ASan/UBSan job, rich enough that a simulator behavior change moves
 * at least one gated metric.
 */
const char *const gate_campaign =
    "name = gate\n"
    "machine = default\n"
    "kernel = sum:n=262144\n"
    "kernel = daxpy:n=262144\n"
    "kernel = triad:n=1048576\n"
    "kernel = dgemm-opt:n=128\n"
    "kernel = fft:n=65536\n"
    "phase = fft:n=65536 period=131072\n"
    "phase = dgemm-blocked:n=96,block=32 period=16384\n"
    "variant = cold-1c: protocol=cold cores=0 reps=1\n"
    "variant = warm-1c: protocol=warm cores=0 reps=1\n";

rfl::analysis::DiffThresholds
thresholdsFromCli(const rfl::Cli &cli)
{
    rfl::analysis::DiffThresholds thr;
    thr.perfDrop = cli.getDouble("threshold-perf", thr.perfDrop);
    thr.oiDrop = cli.getDouble("threshold-oi", thr.oiDrop);
    thr.trafficRise =
        cli.getDouble("threshold-traffic", thr.trafficRise);
    thr.secondsRise =
        cli.getDouble("threshold-seconds", thr.secondsRise);
    thr.ceilingDrop =
        cli.getDouble("threshold-ceiling", thr.ceilingDrop);
    return thr;
}

/** @return process exit code: 0 clean, 1 when the gate fails. */
int
runDiff(const rfl::analysis::CampaignAnalysis &baseline,
        const rfl::analysis::CampaignAnalysis &current,
        const rfl::analysis::DiffThresholds &thr, bool verbose)
{
    using namespace rfl;
    const analysis::DiffReport report =
        analysis::diffAnalyses(baseline, current, thr);
    if (verbose) {
        report.table().print(std::cout);
        std::cout << "\n";
    }
    report.print(std::cout);
    return report.hasRegressions() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rfl;
    namespace cp = rfl::campaign;

    Cli cli;
    cli.addOption("file", "campaign description file (default: "
                          "built-in gate campaign)");
    cli.addOption("out", "artifact directory (default: $RFL_OUT_DIR "
                         "or ./out)");
    cli.addOption("cache", "JSONL result-cache path (empty = "
                           "in-memory only)",
                  "<out>/cache/campaign.jsonl");
    cli.addOption("threads", "host worker threads (0 = all hardware "
                             "threads)", "0");
    cli.addOption("baseline", "analysis.json to gate the fresh run "
                              "against (exit 1 on regression)");
    cli.addOption("diff", "compare two analysis.json files (positional "
                          "args) without simulating");
    cli.addOption("verbose", "print the full per-metric diff table");
    cli.addOption("threshold-perf", "relative perf-drop gate", "0.05");
    cli.addOption("threshold-oi", "relative OI-drop gate", "0.10");
    cli.addOption("threshold-traffic", "relative traffic-rise gate",
                  "0.10");
    cli.addOption("threshold-seconds", "relative runtime-rise gate",
                  "0.05");
    cli.addOption("threshold-ceiling", "relative ceiling-drop gate",
                  "0.02");
    cli.addOption("hw-gate",
                  "exit 1 when any available hardware row falls more "
                  "than --threshold-hw below its simulated prediction");
    cli.addOption("threshold-hw",
                  "relative sim-vs-silicon perf-drop gate", "0.50");
    cli.parse(argc, argv);

    const analysis::DiffThresholds thr = thresholdsFromCli(cli);

    if (cli.has("diff")) {
        // Accept both "--diff base cur" (the option eats the first
        // path as its value) and "--diff=base cur".
        std::vector<std::string> files;
        if (!cli.get("diff").empty())
            files.push_back(cli.get("diff"));
        for (const std::string &p : cli.positional())
            files.push_back(p);
        if (files.size() != 2) {
            fatal("--diff expects two analysis.json paths: "
                  "--diff <baseline.json> <current.json>");
        }
        const analysis::CampaignAnalysis baseline =
            analysis::loadAnalysisFile(files[0]);
        const analysis::CampaignAnalysis current =
            analysis::loadAnalysisFile(files[1]);
        return runDiff(baseline, current, thr, cli.has("verbose"));
    }

    const std::string out = cli.get("out", outputDirectory());
    ensureDirectory(out);

    const cp::CampaignSpec spec =
        cli.has("file") ? cp::loadCampaignSpec(cli.get("file"))
                        : cp::parseCampaignSpec(gate_campaign);

    std::string cache_path = cli.get("cache", "<default>");
    if (cache_path == "<default>") {
        ensureDirectory(out + "/cache");
        cache_path = out + "/cache/campaign.jsonl";
    }

    cp::ExecutorOptions exec;
    exec.threads = static_cast<int>(cli.getInt("threads", 0));
    exec.traceDir = out + "/traces";
    std::unique_ptr<cp::ResultCache> cache;
    if (!cache_path.empty()) {
        cache = std::make_unique<cp::ResultCache>(cache_path);
        exec.cache = cache.get();
    }

    const cp::CampaignRun run = cp::CampaignExecutor(exec).run(spec);
    cp::printCampaignStats(run, std::cout);
    const analysis::CampaignAnalysis doc =
        cp::writeCampaignReport(run, out, std::cout);
    analysisTable(doc).print(std::cout);
    std::cout << "\n";

    // Sim-vs-silicon: printed whenever the document has hardware rows;
    // gating is opt-in (--hw-gate) because the tolerance is a
    // methodology question, not a correctness one.
    const analysis::HardwareDeltaReport hw = analysis::hardwareDelta(doc);
    if (!hw.empty()) {
        std::cout << "sim-vs-silicon deltas:\n";
        hw.table().print(std::cout);
        const size_t violations =
            hw.gate(cli.getDouble("threshold-hw", 0.50), std::cout);
        std::cout << "\n";
        if (cli.has("hw-gate") && violations > 0)
            return 1;
    } else if (cli.has("hw-gate")) {
        std::cout << "hw-gate: no hardware rows in this campaign "
                     "(add `backend = perf` to the spec)\n";
    }

    if (cli.has("baseline")) {
        const analysis::CampaignAnalysis baseline =
            analysis::loadAnalysisFile(cli.get("baseline"));
        return runDiff(baseline, doc, thr, cli.has("verbose"));
    }
    return 0;
}
