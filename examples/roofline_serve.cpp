/**
 * @file
 * roofline_serve — roofline-as-a-service: the campaign subsystem
 * behind an HTTP JSON API (DESIGN.md §10).
 *
 * A resident daemon that amortizes what one-shot CLI runs cannot: the
 * result cache stays warm across requests, identical in-flight
 * submissions are deduplicated by content hash, and any number of
 * clients share the same executor.
 *
 *   roofline_serve                           # 127.0.0.1:8080
 *   roofline_serve --port 0 --port-file p    # ephemeral port, written
 *                                            # to a file for scripts
 *   roofline_serve --cache serve/cache.jsonl # persistent result cache
 *   roofline_serve --rate 50                 # per-client requests/sec
 *
 * Endpoints (see src/service/api.hh and README "Serving"):
 *   POST /v1/campaigns             submit a campaign spec
 *   GET  /v1/campaigns/<id>        poll status
 *   GET  /v1/campaigns/<id>/analysis|report.html|roofline.svg
 *   GET  /healthz, /statsz
 *   GET  /metricsz                 Prometheus text exposition
 *   GET  /tracez?job=<ticket>      chrome://tracing span tree
 *   GET  /seriesz                  metrics time-series rings (JSON)
 *   GET  /dashz                    live HTML dashboard (sparklines)
 *   GET  /profilez?seconds=N       CPU profile (JSON or flamegraph)
 *
 * SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, finish
 * in-flight requests and campaigns, exit 0.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "service/api.hh"
#include "service/http_server.hh"
#include "service/job_queue.hh"
#include "service/session.hh"
#include "support/cli.hh"
#include "support/csv.hh"
#include "telemetry/metrics.hh"
#include "telemetry/sim_counters.hh"
#include "telemetry/timeseries.hh"

namespace
{

/** Signal handlers may only touch lock-free atomics; the main loop
 *  polls this and runs the actual teardown. */
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
}

} // namespace

namespace
{

int
serve(int argc, char **argv)
{
    using namespace rfl;
    namespace sv = rfl::service;

    Cli cli;
    cli.addOption("host", "listen address", "127.0.0.1");
    cli.addOption("port", "TCP port (0 = ephemeral)", "8080");
    cli.addOption("port-file",
                  "write the bound port to this file once listening");
    cli.addOption("http-threads", "connection-serving threads", "64");
    cli.addOption("queue-workers", "concurrent campaign executions",
                  "2");
    cli.addOption("sim-threads", "host threads per campaign (0 = all "
                                 "hardware threads)", "0");
    cli.addOption("job-timeout",
                  "wall-clock seconds each campaign job may run "
                  "before it is cancelled and the ticket lands in "
                  "timed_out (0 = unlimited)",
                  "0");
    cli.addOption("queue-depth", "max queued campaigns before 429",
                  "32");
    cli.addOption("retain", "finished campaigns kept in memory "
                            "(oldest evicted beyond this)", "256");
    cli.addOption("cache", "JSONL result-cache path (empty = "
                           "in-memory)", "<out>/cache/serve.jsonl");
    cli.addOption("rate", "per-client sustained requests/second "
                          "(0 = unlimited)", "0");
    cli.addOption("burst", "per-client burst allowance", "32");
    cli.addOption("sample-interval-ms",
                  "time-series scrape period for /seriesz and /dashz "
                  "(0 disables the sampler)",
                  "1000");
    cli.addOption("sample-capacity",
                  "points retained per time series", "600");
    cli.addOption("out", "artifact/trace directory (default: "
                         "$RFL_OUT_DIR or ./out)");
    cli.addOption("quiet", "suppress per-request log lines");
    cli.parse(argc, argv);

    const std::string out = cli.get("out", outputDirectory());
    ensureDirectory(out);

    std::string cache_path = cli.get("cache", "<default>");
    if (cache_path == "<default>") {
        ensureDirectory(out + "/cache");
        cache_path = out + "/cache/serve.jsonl";
    }

    sv::JobQueueOptions qopts;
    qopts.workers = static_cast<int>(cli.getInt("queue-workers", 2));
    qopts.maxQueued =
        static_cast<size_t>(cli.getInt("queue-depth", 32));
    qopts.maxFinished =
        static_cast<size_t>(cli.getInt("retain", 256));
    qopts.exec.threads =
        static_cast<int>(cli.getInt("sim-threads", 0));
    qopts.exec.jobTimeoutSeconds = cli.getDouble("job-timeout", 0.0);
    qopts.exec.traceDir = out + "/traces";
    qopts.cachePath = cache_path;
    // A resident daemon wants the simulator's fleet counters in every
    // /metricsz scrape; the per-batch cost is negligible next to the
    // campaigns themselves.
    telemetry::setSimTelemetryEnabled(true);
    sv::JobQueue queue(qopts);

    sv::SessionOptions sopts;
    sopts.ratePerSec = cli.getDouble("rate", 0.0);
    sopts.burst = cli.getDouble("burst", 32.0);
    sopts.logRequests = !cli.has("quiet");
    sv::SessionTable sessions(sopts);

    sv::ApiHandler api(queue, sessions);

    // Time-series sampler behind /seriesz and /dashz: scrapes the
    // global registry into fixed rings on its own thread; memory is
    // bounded by capacity x maxSeries regardless of uptime.
    telemetry::TimeSeriesOptions tsopts;
    tsopts.intervalSeconds =
        cli.getDouble("sample-interval-ms", 1000.0) / 1000.0;
    tsopts.capacity = static_cast<size_t>(
        std::max<long>(2, cli.getInt("sample-capacity", 600)));
    std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
    if (tsopts.intervalSeconds > 0.0) {
        sampler = std::make_unique<telemetry::TimeSeriesSampler>(
            telemetry::Registry::global(), tsopts);
        sampler->start();
        api.setTimeSeriesSampler(sampler.get());
    }

    sv::HttpServerOptions hopts;
    hopts.host = cli.get("host", "127.0.0.1");
    hopts.port = static_cast<int>(cli.getInt("port", 8080));
    hopts.workers =
        static_cast<int>(cli.getInt("http-threads", 64));
    sv::HttpServer server(hopts);
    server.start([&api](const sv::HttpRequest &req) {
        return api.handle(req);
    });
    api.setServerStats([&server] { return server.stats(); });

    std::cout << "roofline_serve listening on " << hopts.host << ":"
              << server.port() << " (http-threads=" << hopts.workers
              << ", queue-workers=" << qopts.workers
              << ", cache=" << (cache_path.empty() ? "<memory>"
                                                   : cache_path)
              << ")" << std::endl;
    if (cli.has("port-file")) {
        std::ofstream pf(cli.get("port-file"));
        pf << server.port() << "\n";
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (g_signal.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cout << "signal " << g_signal.load()
              << ": shutting down gracefully..." << std::endl;
    server.stop();
    if (sampler)
        sampler->stop();
    queue.stop();

    const sv::JobQueueStats q = queue.stats();
    const sv::HttpServerStats h = server.stats();
    std::cout << "served " << h.requestsServed << " request(s) on "
              << h.connectionsAccepted << " connection(s); campaigns: "
              << q.executed << " executed, " << q.deduplicated
              << " deduplicated, " << q.failed << " failed"
              << std::endl;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Constructing the JobQueue flips fatal() into throwing mode, so
    // a startup user error after that point (port taken, bad --host)
    // arrives here as FatalError — report it like the pre-throw
    // fatal() would have and exit 1, instead of std::terminate.
    try {
        return serve(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << std::endl;
        return 1;
    }
}
