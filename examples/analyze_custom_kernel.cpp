/**
 * @file
 * Example: bring your own kernel.
 *
 * The scenario the tool exists for: you wrote a kernel, you want to know
 * whether it is memory bound, how far from the roof it sits, and what
 * optimization could pay off. This example defines a kernel the library
 * does not ship — complex magnitude with a fused normalization,
 *     out[i] = sqrt(re[i]^2 + im[i]^2) * inv_norm
 * — implements the Kernel interface including its analytic W/Q models,
 * and runs the full methodology on it.
 */

#include <cstdio>
#include <iostream>

#include "kernels/kernel.hh"
#include "roofline/experiment.hh"
#include "support/aligned_buffer.hh"
#include "support/units.hh"

namespace
{

using namespace rfl;

/** out[i] = |z[i]| * inv_norm for interleaved complex input. */
class ComplexMagnitude : public kernels::Kernel
{
  public:
    explicit ComplexMagnitude(size_t n) : n_(n), z_(2 * n), out_(n) {}

    std::string name() const override { return "cmagnitude"; }
    std::string
    sizeLabel() const override
    {
        return "n=" + std::to_string(n_);
    }
    size_t workingSetBytes() const override { return 24 * n_; }

    /**
     * Per element: 2 muls (squares), 1 add, 1 sqrt-as-division stand-in
     * (modeled as one div), 1 scaling mul = 5 flops.
     */
    double expectedFlops() const override
    {
        return 5.0 * static_cast<double>(n_);
    }

    /** Read z (16n), write-allocate + write back out (16n). */
    double expectedColdTrafficBytes() const override
    {
        return 32.0 * static_cast<double>(n_);
    }

    void
    init(uint64_t seed) override
    {
        Rng rng(seed);
        for (size_t i = 0; i < 2 * n_; ++i)
            z_[i] = rng.nextDouble(-2.0, 2.0);
    }

    void
    run(kernels::NativeEngine &e, int part, int nparts) override
    {
        runT(e, part, nparts);
    }

    void
    run(kernels::SimEngine &e, int part, int nparts) override
    {
        runT(e, part, nparts);
    }

    double
    checksum() const override
    {
        double s = 0;
        for (size_t i = 0; i < n_; ++i)
            s += out_[i];
        return s;
    }

  private:
    template <typename E>
    void
    runT(E &e, int part, int nparts)
    {
        const auto [lo, hi] = kernels::partitionRange(n_, part, nparts);
        const double inv_norm = 0.5;
        for (size_t i = lo; i < hi; ++i) {
            const double re = e.load(z_.data() + 2 * i);
            const double im = e.load(z_.data() + 2 * i + 1);
            const double re2 = e.mul(re, re);
            const double mag2 = e.fmadd(im, im, re2);
            // Model sqrt via one divide (same port, similar cost class).
            const double mag = e.div(mag2, 1.0 + mag2);
            e.store(out_.data() + i, e.mul(mag, inv_norm));
        }
        e.loop(hi - lo, 2);
    }

    size_t n_;
    AlignedBuffer<double> z_;
    AlignedBuffer<double> out_;
};

} // namespace

int
main()
{
    using namespace rfl;
    using namespace rfl::roofline;

    Experiment exp;
    const std::vector<int> cores = singleThreadCores(exp.machine());
    const RooflineModel &model = exp.modelFor(cores);

    ComplexMagnitude kernel(1 << 20);

    MeasureOptions opts;
    opts.cores = cores;
    const Measurement m = exp.measurer().measure(kernel, opts);

    std::printf("kernel %s %s\n", m.kernel.c_str(), m.sizeLabel.c_str());
    std::printf("  W measured %s (model %s, err %.2f%%)\n",
                formatFlops(m.flops).c_str(),
                formatFlops(m.expectedFlops).c_str(),
                100.0 * m.workError());
    std::printf("  Q measured %s (model %s, err %.2f%%)\n",
                formatBytes(m.trafficBytes).c_str(),
                formatBytes(m.expectedTrafficBytes).c_str(),
                100.0 * m.trafficError());
    std::printf("  I = %.4f flops/byte, P = %s\n", m.oi(),
                formatFlopRate(m.perf()).c_str());

    const double att = model.attainable(m.oi());
    std::printf("  roof at I: %s -> runtime compute %.1f%%\n",
                formatFlopRate(att).c_str(), 100.0 * m.perf() / att);
    std::printf("  ridge point: %.2f flops/byte -> this kernel is %s\n",
                model.ridgePoint(),
                m.oi() < model.ridgePoint() ? "MEMORY bound"
                                            : "COMPUTE bound");
    std::printf("  => vectorizing further cannot help below the roof; "
                "raising I (fusing passes, NT stores) can.\n\n");

    RooflinePlot plot("custom kernel analysis", model);
    plot.addMeasurement(m);
    std::cout << plot.renderAscii();
    return 0;
}
