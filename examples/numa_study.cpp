/**
 * @file
 * Example: NUMA placement study.
 *
 * The methodology's most operational lesson: without binding threads and
 * memory (numactl in the paper), multi-socket measurements are wrong —
 * points land above the single-socket roof because the OS quietly uses
 * the other socket's memory channels. This example measures triad
 * bandwidth for each placement policy and core set and shows where each
 * policy helps or hurts.
 */

#include <cstdio>
#include <iostream>

#include "roofline/experiment.hh"
#include "support/table.hh"
#include "support/units.hh"

int
main()
{
    using namespace rfl;
    using namespace rfl::roofline;

    Experiment exp;
    sim::Machine &machine = exp.machine();

    struct ScenarioDef
    {
        const char *name;
        std::vector<int> cores;
    };
    const ScenarioDef scenarios[] = {
        {"1 core s0", {0}},
        {"4 cores s0", {0, 1, 2, 3}},
        {"4 cores s1", {4, 5, 6, 7}},
        {"8 cores", {0, 1, 2, 3, 4, 5, 6, 7}},
    };
    const sim::MemPolicy policies[] = {
        sim::MemPolicy::Socket0,
        sim::MemPolicy::LocalToAccessor,
        sim::MemPolicy::Interleave,
    };

    Table t({"cores", "policy", "triad BW [GB/s]", "runtime"});
    for (const ScenarioDef &s : scenarios) {
        for (sim::MemPolicy policy : policies) {
            machine.setMemPolicy(policy);
            MeasureOptions opts;
            opts.cores = s.cores;
            opts.repetitions = 1;
            const Measurement m =
                exp.measureSpec("triad:n=4194304", opts);
            t.addRow({s.name, sim::memPolicyName(policy),
                      formatSig(m.trafficBytes / m.seconds / 1e9, 4),
                      formatSeconds(m.seconds)});
        }
    }
    machine.setMemPolicy(sim::MemPolicy::LocalToAccessor);

    t.print(std::cout);
    std::printf(
        "\nreading the table:\n"
        " - socket0 policy: socket-1 cores pay the remote penalty and a\n"
        "   full 8-core run bottlenecks on one socket's controller;\n"
        " - local binding (the paper's numactl discipline): each socket\n"
        "   streams from its own DRAM, bandwidth doubles with sockets;\n"
        " - interleave: single-core runs get HIGHER apparent bandwidth\n"
        "   than one socket can deliver (both controllers serve it) —\n"
        "   exactly the unbound-measurement artifact the paper warns\n"
        "   invalidates single-socket rooflines.\n");
    return 0;
}
