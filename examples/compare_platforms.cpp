/**
 * @file
 * Example: comparing platforms with rooflines.
 *
 * One of the four roofline uses the paper lists is platform comparison.
 * This example characterizes three machine configurations — a scalar
 * single-core box, the default AVX 2-socket platform, and a widened
 * AVX-512 variant with faster memory — and shows how the same two
 * kernels land on each machine's roofline: the memory-bound kernel
 * follows the bandwidth differences, the compute-bound kernel follows
 * the SIMD width.
 */

#include <cstdio>
#include <iostream>

#include "roofline/experiment.hh"
#include "support/table.hh"
#include "support/units.hh"

namespace
{

rfl::sim::MachineConfig
avx512Platform()
{
    using namespace rfl::sim;
    MachineConfig cfg = MachineConfig::defaultPlatform();
    cfg.name = "sim-xeon-avx512";
    cfg.core.maxVectorDoubles = 8;
    cfg.socketDramGBs = 76.8;
    cfg.perCoreDramGBs = 20.0;
    cfg.l3.sizeBytes = 20 * 1024 * 1024;
    cfg.validate();
    return cfg;
}

} // namespace

int
main()
{
    using namespace rfl;
    using namespace rfl::roofline;

    const sim::MachineConfig configs[] = {
        sim::MachineConfig::scalarMachine(),
        sim::MachineConfig::defaultPlatform(),
        avx512Platform(),
    };

    Table t({"platform", "peak pi", "peak beta", "ridge",
             "daxpy P [GF/s]", "dgemm P [GF/s]", "dgemm RC %"});

    for (const sim::MachineConfig &cfg : configs) {
        Experiment exp(cfg);
        const std::vector<int> cores = singleThreadCores(exp.machine());
        const RooflineModel &model = exp.modelFor(cores);

        MeasureOptions opts;
        opts.cores = cores;
        opts.repetitions = 1;
        const Measurement daxpy =
            exp.measureSpec("daxpy:n=1048576", opts);
        const Measurement dgemm = exp.measureSpec("dgemm-opt:n=192", opts);

        t.addRow({cfg.name, formatFlopRate(model.peakCompute()),
                  formatByteRate(model.peakBandwidth()),
                  formatSig(model.ridgePoint(), 3),
                  formatSig(daxpy.perf() / 1e9, 4),
                  formatSig(dgemm.perf() / 1e9, 4),
                  formatSig(100.0 * dgemm.perf() /
                                model.attainable(dgemm.oi()),
                            3)});

        RooflinePlot plot(cfg.name + " (single core)", model);
        plot.addMeasurement(daxpy);
        plot.addMeasurement(dgemm);
        std::cout << plot.renderAscii() << "\n";
    }

    std::printf("cross-platform summary (single core each):\n");
    t.print(std::cout);
    std::printf(
        "\nreading: daxpy scales with memory bandwidth across machines\n"
        "while dgemm scales with SIMD width — the roofline separates\n"
        "the two effects without profiling detail.\n");
    return 0;
}
