/**
 * @file
 * Quickstart: measure one kernel and draw its roofline.
 *
 * Demonstrates the five-line happy path of the library:
 *   1. build an Experiment (simulated platform + probe + measurer),
 *   2. characterize the machine's ceilings for a scenario,
 *   3. measure a kernel (work W from FP counters, traffic Q from the
 *      IMC, runtime T from the timing model, overhead-subtracted),
 *   4. place the point on the roofline,
 *   5. render.
 */

#include <iostream>
#include <memory>

#include "kernels/daxpy.hh"
#include "kernels/dgemm.hh"
#include "roofline/experiment.hh"
#include "support/units.hh"

int
main()
{
    using namespace rfl;
    using namespace rfl::roofline;

    Experiment exp; // default 2-socket simulated platform

    // Scenario: the paper's single-thread case.
    const std::vector<int> cores = singleThreadCores(exp.machine());
    const RooflineModel &model = exp.modelFor(cores);

    std::cout << "platform: " << exp.machine().config().name << "\n";
    std::cout << "peak compute:   " << formatFlopRate(model.peakCompute())
              << "\n";
    std::cout << "peak bandwidth: "
              << formatByteRate(model.peakBandwidth()) << "\n";
    std::cout << "ridge point:    " << formatSig(model.ridgePoint(), 3)
              << " flops/byte\n\n";

    // Measure a memory-bound and a compute-bound kernel, cold caches.
    MeasureOptions opts;
    opts.cores = cores;

    kernels::Daxpy daxpy(1 << 20);
    const Measurement m1 = exp.measurer().measure(daxpy, opts);

    kernels::DgemmBlocked dgemm(192);
    const Measurement m2 = exp.measurer().measure(dgemm, opts);

    RooflinePlot plot("quickstart: daxpy vs dgemm (" +
                          scenarioName(exp.machine(), cores) + ")",
                      model);
    plot.addMeasurement(m1);
    plot.addMeasurement(m2);

    exp.emit(plot, "quickstart", {m1, m2});

    std::cout << "daxpy measured W = " << formatFlops(m1.flops)
              << " (expected " << formatFlops(m1.expectedFlops) << ")\n";
    std::cout << "daxpy measured Q = " << formatBytes(m1.trafficBytes)
              << " (expected " << formatBytes(m1.expectedTrafficBytes)
              << ")\n";
    return 0;
}
