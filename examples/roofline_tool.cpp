/**
 * @file
 * roofline_tool — the command-line front end to the whole methodology.
 *
 * Measures any registered kernel under any scenario and prints the
 * roofline. This is the "program to benchmark computing platforms and
 * evaluate kernels" the paper describes, as a single binary:
 *
 *   roofline_tool                               # default demo
 *   roofline_tool --kernel daxpy:n=1048576 --cores 4 --protocol warm
 *   roofline_tool --kernel dgemm-opt:n=256 --lanes 2 --no-fma
 *   roofline_tool --list                        # kernel catalog
 *   roofline_tool --no-prefetch --kernel stencil3:n=1048576
 */

#include <cstdio>
#include <iostream>

#include "kernels/registry.hh"
#include "roofline/experiment.hh"
#include "roofline/native_measurement.hh"
#include "sim/config_io.hh"
#include "support/cli.hh"
#include "support/units.hh"

int
main(int argc, char **argv)
{
    using namespace rfl;
    using namespace rfl::roofline;

    Cli cli;
    cli.addOption("kernel", "kernel spec, e.g. daxpy:n=65536",
                  "daxpy:n=1048576");
    cli.addOption("cores", "number of simulated cores to use", "1");
    cli.addOption("protocol", "cold or warm caches", "cold");
    cli.addOption("lanes", "vector width in doubles (0 = machine max)",
                  "0");
    cli.addOption("reps", "measurement repetitions", "2");
    cli.addOption("seed", "workload initialization seed", "42");
    cli.addOption("no-fma", "disable fused multiply-add");
    cli.addOption("no-prefetch", "disable the hardware prefetchers");
    cli.addOption("list", "list available kernels and exit");
    cli.addOption("machine", "machine config file (see sim/config_io.hh)");
    cli.addOption("native", "run on the host CPU instead of the simulator");
    cli.addOption("plot-name", "gnuplot artifact stem", "roofline_tool");
    cli.parse(argc, argv);

    if (cli.has("list")) {
        std::printf("available kernels:\n");
        for (const std::string &line : kernels::kernelHelp())
            std::printf("  %s\n", line.c_str());
        return 0;
    }

    if (cli.has("native")) {
        NativeMeasurer nm;
        const std::unique_ptr<kernels::Kernel> kernel =
            kernels::createKernel(cli.get("kernel", "daxpy:n=1048576"));
        NativeMeasureOptions nopts;
        nopts.threads = static_cast<int>(cli.getInt("cores", 1));
        nopts.lanes = static_cast<int>(cli.getInt("lanes", 4));
        if (nopts.lanes == 0)
            nopts.lanes = 4;
        nopts.useFma = !cli.has("no-fma");
        nopts.repetitions = static_cast<int>(cli.getInt("reps", 5));
        if (cli.get("protocol", "cold") == "warm")
            nopts.protocol = CacheProtocol::Warm;
        const NativeMeasurement r = nm.measure(*kernel, nopts);
        std::printf("native host run (perf counters %s)\n",
                    nm.perfAvailable() ? "live" : "unavailable");
        std::printf("  W = %s (software counters, err vs model %.3f%%)\n",
                    formatFlops(r.base.flops).c_str(),
                    100 * r.base.workError());
        std::printf("  T = %s +/- %s\n",
                    formatSeconds(r.base.seconds).c_str(),
                    formatSeconds(r.base.secondsSample.ci95()).c_str());
        std::printf("  P = %s, Q = %s (%s), I = %.4f\n",
                    formatFlopRate(r.base.perf()).c_str(),
                    formatBytes(r.base.trafficBytes).c_str(),
                    r.trafficSource.c_str(), r.base.oi());
        if (r.perfLive) {
            std::printf("  perf: %llu cycles, LLC-miss traffic %s\n",
                        static_cast<unsigned long long>(r.perfCycles),
                        formatBytes(r.perfLlcBytes).c_str());
        }
        return 0;
    }

    Experiment exp(cli.has("machine")
                       ? sim::loadMachineConfig(cli.get("machine"))
                       : sim::MachineConfig::defaultPlatform());
    sim::Machine &machine = exp.machine();
    machine.setPrefetchEnabled(!cli.has("no-prefetch"));

    const long n_cores = cli.getInt("cores", 1);
    if (n_cores < 1 || n_cores > machine.numCores())
        fatal("--cores must be in [1, %d]", machine.numCores());

    MeasureOptions opts;
    opts.cores.clear();
    for (int c = 0; c < n_cores; ++c)
        opts.cores.push_back(c);
    const std::string protocol = cli.get("protocol", "cold");
    if (protocol == "warm")
        opts.protocol = CacheProtocol::Warm;
    else if (protocol != "cold")
        fatal("--protocol must be 'cold' or 'warm'");
    opts.lanes = static_cast<int>(cli.getInt("lanes", 0));
    opts.useFma = !cli.has("no-fma");
    opts.repetitions = static_cast<int>(cli.getInt("reps", 2));
    opts.seed = static_cast<uint64_t>(cli.getInt("seed", 42));

    const std::string spec = cli.get("kernel", "daxpy:n=1048576");
    const Measurement m = exp.measureSpec(spec, opts);

    const RooflineModel &model = exp.modelFor(opts.cores);
    std::printf("platform %s, %s, prefetch %s\n",
                machine.config().name.c_str(),
                scenarioName(machine, opts.cores).c_str(),
                machine.prefetchEnabled() ? "on" : "off");
    std::printf("kernel   %s %s (%s caches, %d lanes%s)\n",
                m.kernel.c_str(), m.sizeLabel.c_str(),
                m.protocol.c_str(), m.lanes,
                opts.useFma ? "" : ", no FMA");
    std::printf("  W = %s   (model %s, err %.3f%%)\n",
                formatFlops(m.flops).c_str(),
                formatFlops(m.expectedFlops).c_str(),
                100 * m.workError());
    std::printf("  Q = %s   (model %s)\n",
                formatBytes(m.trafficBytes).c_str(),
                std::isnan(m.expectedTrafficBytes)
                    ? "n/a"
                    : formatBytes(m.expectedTrafficBytes).c_str());
    std::printf("  T = %s   +/- %s over %zu reps\n",
                formatSeconds(m.seconds).c_str(),
                formatSeconds(m.secondsSample.ci95()).c_str(),
                m.secondsSample.count());
    std::printf("  I = %.4f flops/byte, P = %s\n\n", m.oi(),
                formatFlopRate(m.perf()).c_str());

    RooflinePlot plot(spec + " | " + scenarioName(machine, opts.cores),
                      model);
    plot.addMeasurement(m);
    std::cout << plot.renderAscii();
    plot.pointTable().print(std::cout);

    const std::string gp =
        plot.writeGnuplot(outputDirectory(), cli.get("plot-name",
                                                     "roofline_tool"));
    std::printf("\nwrote %s\n", gp.c_str());
    return 0;
}
